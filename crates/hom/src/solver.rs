//! The homomorphism solver.
//!
//! Decides and enumerates:
//!
//! * `(S, X) → (S', X)` — homomorphisms between generalised t-graphs that
//!   fix `X` pointwise (§3 of the paper);
//! * `(S, X) →µ G` — homomorphisms into an RDF graph extending a mapping µ.
//!
//! Both are NP-complete in general (this is CQ containment / evaluation);
//! the solver is a triple-at-a-time backtracking search with a fail-first
//! ordering: at every step it picks the uncovered source triple with the
//! fewest candidate images under the current partial assignment. RDF-graph
//! targets use the store's positional indexes for candidate counting and
//! retrieval; t-graph targets are scanned (they are small by construction).

use crate::tgraph::{GenTGraph, TGraph, VarMap};
use std::collections::{BTreeMap, HashMap};
use wdsparql_rdf::{Mapping, Term, TripleIndex, TriplePattern, Variable};

/// A homomorphism target: either a t-graph (variables may map to terms) or
/// an RDF graph (variables map to IRIs).
#[derive(Clone, Copy)]
pub enum Target<'a> {
    TGraph(&'a TGraph),
    Rdf(&'a dyn TripleIndex),
}

/// A positional index over a t-graph target: for each position, the triple
/// ids carrying a given term there. Built once per search; RDF targets use
/// the store's own indexes instead.
struct TGraphIndex {
    triples: Vec<TriplePattern>,
    by_pos: [HashMap<Term, Vec<u32>>; 3],
}

impl TGraphIndex {
    fn new(s: &TGraph) -> TGraphIndex {
        let triples: Vec<TriplePattern> = s.iter().copied().collect();
        let mut by_pos: [HashMap<Term, Vec<u32>>; 3] = Default::default();
        for (i, t) in triples.iter().enumerate() {
            for (pos, term) in t.positions().into_iter().enumerate() {
                by_pos[pos].entry(term).or_default().push(i as u32);
            }
        }
        TGraphIndex { triples, by_pos }
    }

    /// The shortest candidate list among the fixed positions, or all
    /// triples when every position is free.
    fn shortlist(&self, slots: &[Slot; 3]) -> Option<&[u32]> {
        let mut best: Option<&[u32]> = None;
        for (pos, slot) in slots.iter().enumerate() {
            let Slot::Fixed(term) = slot else { continue };
            let list = self.by_pos[pos].get(term).map(Vec::as_slice).unwrap_or(&[]);
            if best.is_none_or(|b| list.len() < b.len()) {
                best = Some(list);
            }
        }
        best
    }

    fn candidate_count(&self, slots: &[Slot; 3]) -> usize {
        self.shortlist(slots)
            .map_or(self.triples.len(), <[u32]>::len)
    }

    fn candidates(&self, slots: &[Slot; 3]) -> Vec<[Term; 3]> {
        let check = |t: &TriplePattern| slots_unifiable(slots, t);
        match self.shortlist(slots) {
            None => self
                .triples
                .iter()
                .filter(|t| check(t))
                .map(|t| t.positions())
                .collect(),
            Some(list) => list
                .iter()
                .map(|&i| self.triples[i as usize])
                .filter(|t| check(t))
                .map(|t| t.positions())
                .collect(),
        }
    }
}

enum TargetIndex<'a> {
    TGraph(TGraphIndex),
    Rdf(&'a dyn TripleIndex),
}

impl<'a> TargetIndex<'a> {
    fn new(target: Target<'a>) -> TargetIndex<'a> {
        match target {
            Target::TGraph(s) => TargetIndex::TGraph(TGraphIndex::new(s)),
            Target::Rdf(g) => TargetIndex::Rdf(g),
        }
    }

    fn candidate_count(&self, slots: &[Slot; 3]) -> usize {
        match self {
            TargetIndex::Rdf(g) => g.candidate_count(&rdf_pattern(slots)),
            TargetIndex::TGraph(ix) => ix.candidate_count(slots),
        }
    }

    fn candidates(&self, slots: &[Slot; 3]) -> Vec<[Term; 3]> {
        match self {
            TargetIndex::Rdf(g) => g
                .match_pattern(&rdf_pattern(slots))
                .into_iter()
                .map(|t| [Term::Iri(t.s), Term::Iri(t.p), Term::Iri(t.o)])
                .collect(),
            TargetIndex::TGraph(ix) => ix.candidates(slots),
        }
    }
}

/// Renders slots as a triple pattern for the RDF store's matcher. For RDF
/// targets every fixed slot is an IRI (assignments bind variables to IRIs
/// only), and distinct free variables keep repeated-variable constraints.
fn rdf_pattern(slots: &[Slot; 3]) -> TriplePattern {
    let f = |s: &Slot| match s {
        Slot::Fixed(t) => {
            debug_assert!(t.is_iri(), "RDF targets fix variables to IRIs");
            *t
        }
        Slot::Free(v) => Term::Var(*v),
    };
    TriplePattern::new(f(&slots[0]), f(&slots[1]), f(&slots[2]))
}

/// One position of a source triple under the current partial assignment.
///
/// The distinction matters when source and target share variable names
/// (e.g. when folding a t-graph into its own subgraph during core
/// computation): a *bound* source variable contributes its image as a hard
/// constraint — even when that image is itself a variable — while a *free*
/// source variable matches anything and gets bound.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// A constant or the image of an already-bound source variable.
    Fixed(Term),
    /// An unbound source variable.
    Free(Variable),
}

/// Positional pre-filter: every fixed position must equal the target
/// position; repeated-free-variable consistency is checked during binding.
fn slots_unifiable(slots: &[Slot; 3], target: &TriplePattern) -> bool {
    slots.iter().zip(target.positions()).all(|(s, t)| match s {
        Slot::Free(_) => true,
        Slot::Fixed(term) => *term == t,
    })
}

/// Triple-selection heuristic for the backtracking search — exposed so the
/// fail-first design choice can be ablated (bench `hom_solver`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SearchOrder {
    /// Pick the uncovered source triple with the fewest candidate images
    /// under the current partial assignment (the default).
    #[default]
    FailFirst,
    /// Take uncovered source triples in input order. Same answers, but
    /// without the candidate-count probes — and without their pruning.
    Static,
}

struct Searcher<'a> {
    triples: Vec<TriplePattern>,
    covered: Vec<bool>,
    assign: VarMap,
    target: TargetIndex<'a>,
    order: SearchOrder,
}

impl<'a> Searcher<'a> {
    fn new(src: &TGraph, target: Target<'a>, fixed: VarMap) -> Searcher<'a> {
        Searcher::with_order(src, target, fixed, SearchOrder::FailFirst)
    }

    fn with_order(
        src: &TGraph,
        target: Target<'a>,
        fixed: VarMap,
        order: SearchOrder,
    ) -> Searcher<'a> {
        Searcher {
            triples: src.iter().copied().collect(),
            covered: vec![false; src.len()],
            assign: fixed,
            target: TargetIndex::new(target),
            order,
        }
    }

    /// The source triple at `idx` as slots under the current assignment.
    fn slots(&self, idx: usize) -> [Slot; 3] {
        let t = self.triples[idx];
        let f = |term: Term| match term {
            Term::Iri(_) => Slot::Fixed(term),
            Term::Var(v) => match self.assign.get(&v) {
                Some(&image) => Slot::Fixed(image),
                None => Slot::Free(v),
            },
        };
        [f(t.s), f(t.p), f(t.o)]
    }

    /// Picks the next uncovered triple according to [`SearchOrder`].
    fn pick(&self) -> Option<(usize, usize)> {
        match self.order {
            SearchOrder::Static => (0..self.triples.len())
                .find(|&idx| !self.covered[idx])
                .map(|idx| (idx, 0)),
            SearchOrder::FailFirst => {
                let mut best: Option<(usize, usize)> = None;
                for idx in 0..self.triples.len() {
                    if self.covered[idx] {
                        continue;
                    }
                    let count = self.target.candidate_count(&self.slots(idx));
                    match best {
                        Some((_, c)) if c <= count => {}
                        _ => best = Some((idx, count)),
                    }
                    if count == 0 {
                        break;
                    }
                }
                best
            }
        }
    }

    /// Exhaustive search; `cb` is called once per complete homomorphism and
    /// returns `true` to continue enumerating. Returns `false` if the
    /// callback aborted the search.
    fn search(&mut self, cb: &mut dyn FnMut(&VarMap) -> bool) -> bool {
        let Some((idx, _)) = self.pick() else {
            return cb(&self.assign);
        };
        self.covered[idx] = true;
        let slots = self.slots(idx);
        for cand in self.target.candidates(&slots) {
            let mut newly_bound: Vec<Variable> = Vec::new();
            let mut ok = true;
            for (slot, value) in slots.iter().zip(cand) {
                match slot {
                    Slot::Fixed(term) => {
                        if *term != value {
                            ok = false;
                            break;
                        }
                    }
                    Slot::Free(v) => match self.assign.get(v) {
                        Some(&prev) => {
                            // Repeated free variable within this triple,
                            // bound a moment ago.
                            if prev != value {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            self.assign.insert(*v, value);
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            let keep_going = if ok { self.search(cb) } else { true };
            for v in newly_bound {
                self.assign.remove(&v);
            }
            if !keep_going {
                self.covered[idx] = false;
                return false;
            }
        }
        self.covered[idx] = false;
        true
    }
}

/// Finds a homomorphism `(S, X) → (S', X)`: a map `h` with
/// `dom(h) = vars(S)`, `h(?x) = ?x` for `?x ∈ X`, and `h(t) ∈ S'` for every
/// `t ∈ S`. The returned map includes the identity bindings on `X`.
pub fn find_hom(src: &GenTGraph, dst: &TGraph) -> Option<VarMap> {
    let fixed: VarMap = src.x.iter().map(|&v| (v, Term::Var(v))).collect();
    let mut searcher = Searcher::new(&src.s, Target::TGraph(dst), fixed);
    let mut found: Option<VarMap> = None;
    searcher.search(&mut |h| {
        found = Some(h.clone());
        false
    });
    found
}

/// `(S, X) → (S', X)`?
pub fn maps_to(src: &GenTGraph, dst: &GenTGraph) -> bool {
    debug_assert_eq!(src.x, dst.x, "homomorphism requires identical X");
    find_hom(src, &dst.s).is_some()
}

/// Finds a homomorphism witnessing `(S, X) →µ G`: `h : vars(S) → I` with
/// `h(?x) = µ(?x)` for `?x ∈ X` and `h(t) ∈ G` for every `t ∈ S`.
///
/// `fixed` may bind additional variables beyond `X` (they are treated as
/// further fixed points); bindings on variables not occurring in `S` are
/// ignored. Returns the full mapping on `vars(S)`.
pub fn find_hom_into_graph(
    src: &GenTGraph,
    g: &dyn TripleIndex,
    fixed: &Mapping,
) -> Option<Mapping> {
    let mut out: Option<Mapping> = None;
    enumerate_homs_into_graph(&src.s, g, fixed, &mut |mu| {
        out = Some(mu);
        false
    });
    out
}

/// As [`find_hom_into_graph`], with an explicit [`SearchOrder`] — the
/// ablation entry point for measuring what the fail-first heuristic buys.
/// Both orders are exhaustive, so the *answer* never depends on the order.
pub fn find_hom_into_graph_with(
    src: &GenTGraph,
    g: &dyn TripleIndex,
    fixed: &Mapping,
    order: SearchOrder,
) -> Option<Mapping> {
    let vars = src.s.vars();
    let fixed_map: VarMap = fixed
        .iter()
        .filter(|(v, _)| vars.contains(v))
        .map(|(v, i)| (v, Term::Iri(i)))
        .collect();
    let mut searcher = Searcher::with_order(&src.s, Target::Rdf(g), fixed_map, order);
    let mut out: Option<Mapping> = None;
    searcher.search(&mut |h| {
        out = Some(varmap_to_mapping(h));
        false
    });
    out
}

/// `(S, X) →µ G`?
pub fn maps_into_graph(src: &GenTGraph, g: &dyn TripleIndex, mu: &Mapping) -> bool {
    debug_assert!(
        src.x.iter().all(|&v| mu.contains(v)),
        "µ must be defined on X"
    );
    find_hom_into_graph(src, g, mu).is_some()
}

/// Enumerates every homomorphism from the t-graph `src` into `g` that
/// extends `fixed` (restricted to variables of `src`). `cb` returns `true`
/// to continue; the function returns `false` iff the callback aborted.
pub fn enumerate_homs_into_graph(
    src: &TGraph,
    g: &dyn TripleIndex,
    fixed: &Mapping,
    cb: &mut dyn FnMut(Mapping) -> bool,
) -> bool {
    let vars = src.vars();
    let fixed_map: VarMap = fixed
        .iter()
        .filter(|(v, _)| vars.contains(v))
        .map(|(v, i)| (v, Term::Iri(i)))
        .collect();
    let mut searcher = Searcher::new(src, Target::Rdf(g), fixed_map);
    searcher.search(&mut |h| {
        let mu = varmap_to_mapping(h);
        cb(mu)
    })
}

/// Collects all homomorphisms from `src` into `g` extending `fixed`.
pub fn all_homs_into_graph(src: &TGraph, g: &dyn TripleIndex, fixed: &Mapping) -> Vec<Mapping> {
    let mut out = Vec::new();
    enumerate_homs_into_graph(src, g, fixed, &mut |mu| {
        out.push(mu);
        true
    });
    out
}

fn varmap_to_mapping(h: &VarMap) -> Mapping {
    Mapping::from_pairs(h.iter().map(|(&v, &t)| match t {
        Term::Iri(i) => (v, i),
        Term::Var(_) => unreachable!("RDF-graph homomorphisms bind variables to IRIs"),
    }))
}

/// The composition `g ∘ h` of two substitutions (apply `h` first).
pub fn compose(h: &VarMap, g: &VarMap) -> VarMap {
    let mut out: VarMap = BTreeMap::new();
    for (&v, &t) in h {
        let image = match t {
            Term::Var(u) => g.get(&u).copied().unwrap_or(Term::Var(u)),
            iri => iri,
        };
        out.insert(v, image);
    }
    out
}

/// Restricts a `Mapping` view of a `VarMap` whose values are all IRIs.
pub fn varmap_as_mapping(h: &VarMap) -> Option<Mapping> {
    let mut mu = Mapping::new();
    for (&v, &t) in h {
        match t {
            Term::Iri(i) => mu.bind(v, i),
            Term::Var(_) => return None,
        }
    }
    Some(mu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::RdfGraph;
    use wdsparql_rdf::{tp, Iri};

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn k3_pattern() -> TGraph {
        // A triangle as a t-graph over predicate r.
        TGraph::from_patterns([
            tp(var("a"), iri("r"), var("b")),
            tp(var("b"), iri("r"), var("c")),
            tp(var("c"), iri("r"), var("a")),
        ])
    }

    #[test]
    fn hom_into_graph_finds_triangle() {
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("3", "r", "1")]);
        let src = GenTGraph::new(k3_pattern(), []);
        let h = find_hom_into_graph(&src, &g, &Mapping::new()).unwrap();
        assert!(src.s.maps_into_under(&h, &g));
    }

    #[test]
    fn hom_into_graph_respects_mu() {
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("3", "r", "1")]);
        let src = GenTGraph::new(k3_pattern(), [v("a")]);
        let mu = Mapping::from_strs([("a", "2")]);
        let h = find_hom_into_graph(&src, &g, &mu).unwrap();
        assert_eq!(h.get(v("a")), Some(Iri::new("2")));
        // No homomorphism when µ pins a to a vertex outside any triangle.
        let g2 = RdfGraph::from_strs([
            ("1", "r", "2"),
            ("2", "r", "3"),
            ("3", "r", "1"),
            ("9", "r", "1"),
        ]);
        let mu9 = Mapping::from_strs([("a", "9")]);
        assert!(find_hom_into_graph(&src, &g2, &mu9).is_none());
    }

    #[test]
    fn no_hom_into_bipartite_graph() {
        // Odd cycle cannot map into a bipartite (directed both ways) graph
        // without loops.
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "1")]);
        let src = GenTGraph::new(k3_pattern(), []);
        assert!(find_hom_into_graph(&src, &g, &Mapping::new()).is_none());
    }

    #[test]
    fn hom_collapses_onto_loop() {
        let g = RdfGraph::from_strs([("1", "r", "1")]);
        let src = GenTGraph::new(k3_pattern(), []);
        let h = find_hom_into_graph(&src, &g, &Mapping::new()).unwrap();
        for x in ["a", "b", "c"] {
            assert_eq!(h.get(v(x)), Some(Iri::new("1")));
        }
    }

    #[test]
    fn enumerate_counts_all_path_homs() {
        // (?x)-r->(?y) into a 3-cycle: 3 homomorphisms.
        let src = TGraph::from_patterns([tp(var("x"), iri("r"), var("y"))]);
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("3", "r", "1")]);
        assert_eq!(all_homs_into_graph(&src, &g, &Mapping::new()).len(), 3);
    }

    #[test]
    fn enumeration_can_be_aborted() {
        let src = TGraph::from_patterns([tp(var("x"), iri("r"), var("y"))]);
        let g = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("3", "r", "1")]);
        let mut seen = 0;
        let exhausted = enumerate_homs_into_graph(&src, &g, &Mapping::new(), &mut |_| {
            seen += 1;
            seen < 2
        });
        assert!(!exhausted);
        assert_eq!(seen, 2);
    }

    #[test]
    fn tgraph_hom_fixes_x() {
        // (S, {x}): x-p->y  maps into  S': x-p->z (rename y ↦ z).
        let s = TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]);
        let s2 = TGraph::from_patterns([tp(var("x"), iri("p"), var("z"))]);
        let src = GenTGraph::new(s.clone(), [v("x")]);
        let h = find_hom(&src, &s2).unwrap();
        assert_eq!(h[&v("x")], Term::Var(v("x")));
        assert_eq!(h[&v("y")], Term::Var(v("z")));
        // But (S, {x, y}) does not map: y must stay fixed.
        let src_xy = GenTGraph::new(s, [v("x"), v("y")]);
        assert!(find_hom(&src_xy, &s2).is_none());
    }

    #[test]
    fn tgraph_hom_constants_must_match() {
        let s = TGraph::from_patterns([tp(var("x"), iri("p"), iri("c"))]);
        let ok = TGraph::from_patterns([tp(var("u"), iri("p"), iri("c"))]);
        let bad = TGraph::from_patterns([tp(var("u"), iri("p"), iri("d"))]);
        let src = GenTGraph::new(s, []);
        assert!(find_hom(&src, &ok).is_some());
        assert!(find_hom(&src, &bad).is_none());
    }

    #[test]
    fn tgraph_hom_can_map_var_to_iri() {
        let s = TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]);
        let dst = TGraph::from_patterns([tp(iri("a"), iri("p"), iri("b"))]);
        let src = GenTGraph::new(s, []);
        let h = find_hom(&src, &dst).unwrap();
        assert_eq!(h[&v("x")], Term::Iri(Iri::new("a")));
        assert_eq!(h[&v("y")], Term::Iri(Iri::new("b")));
    }

    #[test]
    fn maps_to_is_transitive_on_examples() {
        // Embeddings: P1 → P2 → P3, hence P1 → P3; and any directed path
        // maps into a directed 3-cycle by walking around it.
        let p = |n: usize| {
            TGraph::from_patterns(
                (0..n).map(|i| tp(var(&format!("v{i}")), iri("r"), var(&format!("v{}", i + 1)))),
            )
        };
        let cyc = TGraph::from_patterns([
            tp(var("c0"), iri("r"), var("c1")),
            tp(var("c1"), iri("r"), var("c2")),
            tp(var("c2"), iri("r"), var("c0")),
        ]);
        let a = GenTGraph::new(p(1), []);
        let b = GenTGraph::new(p(2), []);
        let c = GenTGraph::new(p(3), []);
        assert!(maps_to(&a, &b));
        assert!(maps_to(&b, &c));
        assert!(maps_to(&a, &c));
        // Longer paths do NOT fold onto shorter ones...
        assert!(!maps_to(&c, &b));
        // ...but every path winds into a cycle.
        assert!(find_hom(&c, &cyc).is_some());
        assert!(find_hom(&GenTGraph::new(p(7), []), &cyc).is_some());
    }

    #[test]
    fn repeated_variables_in_source_triple() {
        // (?x, r, ?x) needs a loop in the target.
        let s = TGraph::from_patterns([tp(var("x"), iri("r"), var("x"))]);
        let src = GenTGraph::new(s, []);
        let no_loop = RdfGraph::from_strs([("1", "r", "2")]);
        let has_loop = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "2")]);
        assert!(find_hom_into_graph(&src, &no_loop, &Mapping::new()).is_none());
        let h = find_hom_into_graph(&src, &has_loop, &Mapping::new()).unwrap();
        assert_eq!(h.get(v("x")), Some(Iri::new("2")));
    }

    #[test]
    fn fold_into_own_subgraph_is_sound() {
        // Regression test: when source and target share variable names
        // (core folding), the image of a bound variable must act as a hard
        // constraint even though it is itself a variable. A buggy solver
        // treats the substituted position as free and emits a corrupted
        // witness.
        let s = TGraph::from_patterns([
            tp(var("rx"), iri("p"), var("ry")),
            tp(var("ry"), iri("r"), var("rf6")),
            tp(var("ry"), iri("r"), var("rf9")),
            tp(var("rf6"), iri("r"), var("rf7")),
            tp(var("rf7"), iri("r"), var("rf8")),
            tp(var("rf9"), iri("r"), var("rf10")),
            tp(var("rf9"), iri("r"), var("rf11")),
            tp(var("rf10"), iri("r"), var("rf11")),
        ]);
        let s_v = s.without_var(v("rf6"));
        let src = GenTGraph::new(s.clone(), [v("rx"), v("ry")]);
        let h = find_hom(&src, &s_v).expect("the branch folds onto its sibling");
        let image = s.apply(&h);
        assert!(
            image.is_subset(&s_v),
            "witness must map into the target: {image} ⊄ {s_v}"
        );
    }

    #[test]
    fn every_enumerated_tgraph_hom_is_valid() {
        // Enumerate homs between overlapping-name t-graphs and validate
        // each one (uses the internal enumeration through find_hom by
        // folding different variables).
        let s = TGraph::from_patterns([
            tp(var("qa"), iri("r"), var("qb")),
            tp(var("qa"), iri("r"), var("qc")),
            tp(var("qb"), iri("r"), var("qd")),
            tp(var("qc"), iri("r"), var("qd")),
        ]);
        for drop in ["qb", "qc", "qd"] {
            let s_v = s.without_var(v(drop));
            let src = GenTGraph::new(s.clone(), []);
            if let Some(h) = find_hom(&src, &s_v) {
                assert!(s.apply(&h).is_subset(&s_v), "folding {drop}");
            }
        }
    }

    #[test]
    fn compose_substitutions() {
        let h: VarMap = [(v("x"), var("y"))].into_iter().collect();
        let g: VarMap = [(v("y"), iri("a"))].into_iter().collect();
        let gh = compose(&h, &g);
        assert_eq!(gh[&v("x")], Term::Iri(Iri::new("a")));
    }

    #[test]
    fn empty_source_has_exactly_the_empty_hom() {
        let src = TGraph::new();
        let g = RdfGraph::from_strs([("1", "r", "2")]);
        let all = all_homs_into_graph(&src, &g, &Mapping::new());
        assert_eq!(all, vec![Mapping::new()]);
    }

    #[test]
    fn fixed_bindings_outside_src_are_ignored() {
        let src = TGraph::from_patterns([tp(var("x"), iri("r"), var("y"))]);
        let g = RdfGraph::from_strs([("1", "r", "2")]);
        let fixed = Mapping::from_strs([("unrelated", "7"), ("x", "1")]);
        let all = all_homs_into_graph(&src, &g, &fixed);
        assert_eq!(all.len(), 1);
        let dom: BTreeSet<_> = all[0].domain().collect();
        assert_eq!(dom, [v("x"), v("y")].into_iter().collect());
    }

    #[test]
    fn search_orders_agree_on_satisfiability() {
        // Fail-first and static orders must answer identically: the
        // directed 3-cycle pattern has a hom into the directed triangle
        // but none into the transitive (acyclic) one.
        let cycle = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("3", "r", "1")]);
        let acyclic = RdfGraph::from_strs([("1", "r", "2"), ("2", "r", "3"), ("1", "r", "3")]);
        let src = GenTGraph::new(k3_pattern(), []);
        for (g, want) in [(&cycle, true), (&acyclic, false)] {
            for order in [SearchOrder::FailFirst, SearchOrder::Static] {
                assert_eq!(
                    find_hom_into_graph_with(&src, g, &Mapping::new(), order).is_some(),
                    want,
                    "{order:?}"
                );
            }
        }
        // With an anchored binding, the found mapping extends it under
        // either order.
        let fixed = Mapping::from_strs([("a", "1")]);
        for order in [SearchOrder::FailFirst, SearchOrder::Static] {
            let h = find_hom_into_graph_with(&src, &cycle, &fixed, order).unwrap();
            assert_eq!(h.get(v("a")), Some(Iri::new("1")));
            assert_eq!(h.len(), 3);
        }
    }
}
