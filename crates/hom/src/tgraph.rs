//! Triple pattern graphs (t-graphs) and generalised t-graphs.
//!
//! A *t-graph* is a finite set `S` of triple patterns (§2.1). A *generalised
//! t-graph* is a pair `(S, X)` with `X ⊆ vars(S)` a set of distinguished
//! variables that homomorphisms must fix pointwise (§3). Generalised
//! t-graphs correspond to conjunctive queries over one ternary relation,
//! with `X` the free variables and IRIs the constants.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use wdsparql_rdf::{Iri, Mapping, RdfGraph, Term, Triple, TripleIndex, TriplePattern, Variable};

/// A partial substitution `h : V → I ∪ V`, the witness type for
/// homomorphisms between t-graphs.
pub type VarMap = BTreeMap<Variable, Term>;

/// A finite set of triple patterns.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TGraph {
    triples: BTreeSet<TriplePattern>,
}

impl TGraph {
    pub fn new() -> TGraph {
        TGraph::default()
    }

    pub fn from_patterns<I>(patterns: I) -> TGraph
    where
        I: IntoIterator<Item = TriplePattern>,
    {
        TGraph {
            triples: patterns.into_iter().collect(),
        }
    }

    /// Interprets an RDF graph as the (ground) t-graph it is.
    pub fn from_rdf(g: &RdfGraph) -> TGraph {
        TGraph::from_patterns(g.iter().map(|&t| TriplePattern::from(t)))
    }

    pub fn insert(&mut self, t: TriplePattern) -> bool {
        self.triples.insert(t)
    }

    pub fn contains(&self, t: &TriplePattern) -> bool {
        self.triples.contains(t)
    }

    pub fn len(&self) -> usize {
        self.triples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &TriplePattern> {
        self.triples.iter()
    }

    /// `vars(S)`: all variables occurring in some triple pattern.
    pub fn vars(&self) -> BTreeSet<Variable> {
        self.triples
            .iter()
            .flat_map(|t| t.var_occurrences())
            .collect()
    }

    /// All IRIs occurring in some triple pattern.
    pub fn iris(&self) -> BTreeSet<Iri> {
        self.triples
            .iter()
            .flat_map(|t| t.positions())
            .filter_map(Term::as_iri)
            .collect()
    }

    /// All terms (variables and IRIs) occurring in the t-graph.
    pub fn terms(&self) -> BTreeSet<Term> {
        self.triples.iter().flat_map(|t| t.positions()).collect()
    }

    /// Set union of two t-graphs.
    pub fn union(&self, other: &TGraph) -> TGraph {
        let mut out = self.clone();
        out.triples.extend(other.triples.iter().copied());
        out
    }

    /// `S ⊆ S'`?
    pub fn is_subset(&self, other: &TGraph) -> bool {
        self.triples.is_subset(&other.triples)
    }

    /// The sub-t-graph of triples *not* mentioning variable `v`
    /// (`S − v`, the target used for core retractions).
    pub fn without_var(&self, v: Variable) -> TGraph {
        TGraph::from_patterns(
            self.triples
                .iter()
                .filter(|t| t.var_occurrences().all(|u| u != v))
                .copied(),
        )
    }

    /// The set difference `S \ S'`.
    pub fn difference(&self, other: &TGraph) -> TGraph {
        TGraph::from_patterns(self.triples.iter().filter(|t| !other.contains(t)).copied())
    }

    /// Applies a substitution to every triple (the image `h(S)`).
    pub fn apply(&self, h: &VarMap) -> TGraph {
        let f = |v: Variable| h.get(&v).copied();
        TGraph::from_patterns(self.triples.iter().map(|t| t.substitute(&f)))
    }

    /// Applies a mapping `µ` to bound variables, leaving the rest in place.
    pub fn apply_mapping(&self, mu: &Mapping) -> TGraph {
        TGraph::from_patterns(self.triples.iter().map(|t| t.apply_partial(mu)))
    }

    /// If the t-graph is ground, the RDF graph it denotes.
    pub fn as_rdf(&self) -> Option<RdfGraph> {
        let mut g = RdfGraph::new();
        for t in &self.triples {
            g.insert(t.as_triple()?);
        }
        Some(g)
    }

    /// Whether `µ` (with `vars(S) ⊆ dom(µ)`) maps every triple into `G`.
    pub fn maps_into_under(&self, mu: &Mapping, g: &dyn TripleIndex) -> bool {
        self.triples.iter().all(|t| match t.apply(mu) {
            Some(ground) => g.contains(&ground),
            None => false,
        })
    }
}

impl FromIterator<TriplePattern> for TGraph {
    fn from_iter<T: IntoIterator<Item = TriplePattern>>(iter: T) -> TGraph {
        TGraph::from_patterns(iter)
    }
}

impl fmt::Display for TGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.triples.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for TGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A generalised t-graph `(S, X)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GenTGraph {
    pub s: TGraph,
    pub x: BTreeSet<Variable>,
}

impl GenTGraph {
    /// Creates `(S, X)`. The paper requires `X ⊆ vars(S)`; we tolerate
    /// extra `X`-variables (they are simply fixed points with no
    /// occurrences) but debug-assert the intended invariant to catch
    /// construction bugs early.
    pub fn new(s: TGraph, x: impl IntoIterator<Item = Variable>) -> GenTGraph {
        let x: BTreeSet<Variable> = x.into_iter().collect();
        debug_assert!(
            x.iter().all(|v| s.vars().contains(v)),
            "X ⊄ vars(S): {:?} vs {}",
            x,
            s
        );
        GenTGraph { s, x }
    }

    /// The non-distinguished (existential) variables `vars(S) \ X`.
    pub fn existential_vars(&self) -> BTreeSet<Variable> {
        self.s
            .vars()
            .into_iter()
            .filter(|v| !self.x.contains(v))
            .collect()
    }

    /// `(S', X)` is a subgraph of `(S, X)` if `S' ⊆ S`.
    pub fn is_subgraph_of(&self, other: &GenTGraph) -> bool {
        self.x == other.x && self.s.is_subset(&other.s)
    }

    /// Total size (number of triple patterns).
    pub fn len(&self) -> usize {
        self.s.len()
    }

    pub fn is_empty(&self) -> bool {
        self.s.is_empty()
    }

    /// Freezes the variables of `S` into IRIs (the map `Ψ` of §4.2),
    /// returning the frozen RDF graph together with `Ψ` restricted to the
    /// given variables as a `Mapping`.
    ///
    /// Each variable `?x` freezes to the IRI `a?x` — rendered as
    /// `frozen:<name>` so frozen IRIs cannot collide with user IRIs that
    /// would change homomorphism behaviour.
    pub fn freeze(&self, restrict_to: &BTreeSet<Variable>) -> (RdfGraph, Mapping) {
        let psi: BTreeMap<Variable, Iri> = self
            .s
            .vars()
            .into_iter()
            .map(|v| (v, frozen_iri(v)))
            .collect();
        let mut g = RdfGraph::new();
        for t in self.s.iter() {
            let f = |term: Term| match term {
                Term::Iri(i) => i,
                Term::Var(v) => psi[&v],
            };
            g.insert(Triple::new(f(t.s), f(t.p), f(t.o)));
        }
        let mu = Mapping::from_pairs(
            psi.iter()
                .filter(|(v, _)| restrict_to.contains(v))
                .map(|(&v, &i)| (v, i)),
        );
        (g, mu)
    }
}

/// The frozen IRI `a?x` for a variable `?x` (§4.2).
pub fn frozen_iri(v: Variable) -> Iri {
    Iri::new(&format!("frozen:{}", v.name()))
}

/// Inverts freezing: the map `Θ : dom(G) → I ∪ V` sending `a?x` back to
/// `?x` and every other IRI to itself.
pub fn theta(i: Iri) -> Term {
    match i.as_str().strip_prefix("frozen:") {
        Some(name) => Term::Var(Variable::new(name)),
        None => Term::Iri(i),
    }
}

impl fmt::Display for GenTGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {{", self.s)?;
        for (i, v) in self.x.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}})")
    }
}

impl fmt::Debug for GenTGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    fn sample() -> TGraph {
        TGraph::from_patterns([
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("q"), var("z")),
            tp(var("z"), iri("q"), iri("c")),
        ])
    }

    #[test]
    fn vars_and_iris() {
        let s = sample();
        assert_eq!(s.vars(), [v("x"), v("y"), v("z")].into_iter().collect());
        assert_eq!(
            s.iris(),
            [Iri::new("p"), Iri::new("q"), Iri::new("c")]
                .into_iter()
                .collect()
        );
        assert_eq!(s.terms().len(), 6);
    }

    #[test]
    fn without_var_drops_incident_triples() {
        let s = sample();
        let s_y = s.without_var(v("y"));
        assert_eq!(s_y.len(), 1);
        assert!(s_y.contains(&tp(var("z"), iri("q"), iri("c"))));
    }

    #[test]
    fn apply_substitution() {
        let s = sample();
        let h: VarMap = [(v("x"), var("y"))].into_iter().collect();
        let s2 = s.apply(&h);
        assert!(s2.contains(&tp(var("y"), iri("p"), var("y"))));
        assert_eq!(s2.len(), 3);
    }

    #[test]
    fn apply_can_shrink_the_set() {
        let s = TGraph::from_patterns([
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("p"), var("y")),
        ]);
        let h: VarMap = [(v("x"), var("y"))].into_iter().collect();
        assert_eq!(s.apply(&h).len(), 1);
    }

    #[test]
    fn ground_tgraph_roundtrips_to_rdf() {
        let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]);
        let s = TGraph::from_rdf(&g);
        assert_eq!(s.as_rdf().unwrap(), g);
        assert!(sample().as_rdf().is_none());
    }

    #[test]
    fn maps_into_under_checks_all_triples() {
        let s = TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]);
        let g = RdfGraph::from_strs([("a", "p", "b")]);
        let good = Mapping::from_strs([("x", "a"), ("y", "b")]);
        let bad = Mapping::from_strs([("x", "b"), ("y", "a")]);
        let partial = Mapping::from_strs([("x", "a")]);
        assert!(s.maps_into_under(&good, &g));
        assert!(!s.maps_into_under(&bad, &g));
        assert!(!s.maps_into_under(&partial, &g));
    }

    #[test]
    fn existential_vars_exclude_x() {
        let g = GenTGraph::new(sample(), [v("x")]);
        assert_eq!(g.existential_vars(), [v("y"), v("z")].into_iter().collect());
    }

    #[test]
    fn freeze_and_theta_are_inverse() {
        let gt = GenTGraph::new(sample(), [v("x")]);
        let (frozen, mu) = gt.freeze(&gt.x);
        assert_eq!(frozen.len(), 3);
        assert_eq!(mu.len(), 1);
        let a_x = mu.get(v("x")).unwrap();
        assert_eq!(theta(a_x), Term::Var(v("x")));
        assert_eq!(theta(Iri::new("p")), Term::Iri(Iri::new("p")));
        // Constants survive freezing unchanged.
        assert!(frozen.dom_contains(Iri::new("c")));
    }

    #[test]
    fn subgraph_relation() {
        let s = sample();
        let sub = GenTGraph::new(
            TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]),
            [v("x")],
        );
        let full = GenTGraph::new(s, [v("x")]);
        assert!(sub.is_subgraph_of(&full));
        assert!(!full.is_subgraph_of(&sub));
    }

    #[test]
    fn union_and_difference() {
        let a = TGraph::from_patterns([tp(var("x"), iri("p"), var("y"))]);
        let b = TGraph::from_patterns([tp(var("y"), iri("q"), var("z"))]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u.difference(&a), b);
    }
}
