//! Cores of generalised t-graphs (Proposition 1).
//!
//! `(S', X)` is a core of `(S, X)` if it is a core itself (no homomorphism
//! into a proper subgraph), `(S, X) → (S', X)` and `(S', X) → (S, X)`.
//! Every generalised t-graph has a unique core up to renaming of variables.
//!
//! The algorithm is iterated variable elimination, the standard CQ
//! minimisation procedure: a non-distinguished variable `v` can be folded
//! away iff `(S, X) → (S − v, X)` where `S − v` drops every triple
//! mentioning `v`; when a witness `h` is found we replace `S` by `h(S)`
//! (a retract) and repeat until no variable can be eliminated.

use crate::solver::{find_hom, maps_to};
use crate::tgraph::{GenTGraph, TGraph};
use wdsparql_rdf::Variable;

/// Computes the core of `(S, X)`.
///
/// The result is a subgraph of the input (no renaming is applied beyond
/// folding), is itself a core, and is homomorphically equivalent to the
/// input.
pub fn core_of(g: &GenTGraph) -> GenTGraph {
    let mut s = g.s.clone();
    'outer: loop {
        let vars: Vec<Variable> = s.vars().into_iter().filter(|v| !g.x.contains(v)).collect();
        for v in vars {
            let s_v = s.without_var(v);
            if s_v.len() == s.len() {
                continue; // v occurs in no triple (cannot happen) — skip
            }
            let candidate = GenTGraph::new(s.clone(), g.x.clone());
            if let Some(h) = find_hom(&candidate, &s_v) {
                let folded = s.apply(&h);
                debug_assert!(
                    folded.is_subset(&s_v),
                    "solver witness escaped its target: h(S) = {folded} ⊄ {s_v}"
                );
                s = folded;
                continue 'outer;
            }
        }
        break;
    }
    GenTGraph::new(s, g.x.clone())
}

/// Is `(S, X)` a core, i.e. no homomorphism into a proper subgraph?
pub fn is_core(g: &GenTGraph) -> bool {
    g.s.vars()
        .into_iter()
        .filter(|v| !g.x.contains(v))
        .all(|v| {
            let s_v = g.s.without_var(v);
            find_hom(g, &s_v).is_none()
        })
}

/// Homomorphic equivalence `(S, X) ⇄ (S', X)` (both directions).
pub fn hom_equivalent(a: &GenTGraph, b: &GenTGraph) -> bool {
    a.x == b.x && maps_to(a, b) && maps_to(b, a)
}

/// Checks that `c` is *a* core of `g` per the paper's definition.
pub fn is_core_of(c: &GenTGraph, g: &GenTGraph) -> bool {
    is_core(c) && hom_equivalent(c, g)
}

/// The size signature `(|triples|, |vars|)` of a t-graph — equal for
/// isomorphic cores, used to spot-check Proposition 1 (uniqueness up to
/// renaming) in tests.
pub fn size_signature(s: &TGraph) -> (usize, usize) {
    (s.len(), s.vars().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::{tp, Variable};

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    #[test]
    fn path_folds_to_edge() {
        // x -r-> y -r-> z folds onto a single edge when nothing is fixed?
        // No: a 2-path maps onto one edge only if the target has such a
        // fold; S − z = {(x,r,y)} and h(x)=x, h(y)=y, h(z)... h must send
        // (y,r,z) into {(x,r,y)}, so h(y)=x — but then h(x) must satisfy
        // (h(x),r,x) ∈ S−z: only (x,r,y) exists, no. So the 2-path is a
        // core.
        let s = TGraph::from_patterns([
            tp(var("x"), iri("r"), var("y")),
            tp(var("y"), iri("r"), var("z")),
        ]);
        let g = GenTGraph::new(s, []);
        assert!(is_core(&g));
        let c = core_of(&g);
        assert_eq!(c.s.len(), 2);
    }

    #[test]
    fn duplicate_branch_folds() {
        // Two parallel paths from x: x-r->y, x-r->y2 fold to one.
        let s = TGraph::from_patterns([
            tp(var("x"), iri("r"), var("y")),
            tp(var("x"), iri("r"), var("y2")),
        ]);
        let g = GenTGraph::new(s, []);
        let c = core_of(&g);
        assert_eq!(c.s.len(), 1);
        assert!(is_core_of(&c, &g));
    }

    #[test]
    fn distinguished_variables_block_folding() {
        // Same shape, but y and y2 are both distinguished: nothing folds.
        let s = TGraph::from_patterns([
            tp(var("x"), iri("r"), var("y")),
            tp(var("x"), iri("r"), var("y2")),
        ]);
        let g = GenTGraph::new(s, [v("y"), v("y2")]);
        assert!(is_core(&g));
        assert_eq!(core_of(&g).s.len(), 2);
    }

    #[test]
    fn loop_absorbs_clique() {
        // K3 pattern plus a looped extra vertex: everything folds onto the
        // loop.
        let s = TGraph::from_patterns([
            tp(var("a"), iri("r"), var("b")),
            tp(var("b"), iri("r"), var("c")),
            tp(var("c"), iri("r"), var("a")),
            tp(var("l"), iri("r"), var("l")),
        ]);
        let g = GenTGraph::new(s, []);
        let c = core_of(&g);
        assert_eq!(c.s.len(), 1);
        assert_eq!(c.s.vars().len(), 1);
        assert!(is_core_of(&c, &g));
    }

    #[test]
    fn example3_s_prime_core() {
        // (S', X) from Example 3 / Figure 1 with k = 3:
        //   S' = {(z,q,x), (x,p,y), (y,r,o1), (y,r,o), (o,r,o)} ∪ K3(o1,o2,o3)
        //   X  = {x, y, z}
        // Its core is C' = {(z,q,x), (x,p,y), (y,r,o), (o,r,o)}.
        let k = 3;
        let mut pats = vec![
            tp(var("z"), iri("q"), var("x")),
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o1")),
            tp(var("y"), iri("r"), var("o")),
            tp(var("o"), iri("r"), var("o")),
        ];
        for i in 1..=k {
            for j in (i + 1)..=k {
                pats.push(tp(var(&format!("o{i}")), iri("r"), var(&format!("o{j}"))));
            }
        }
        let g = GenTGraph::new(TGraph::from_patterns(pats), [v("x"), v("y"), v("z")]);
        let c = core_of(&g);
        let expected = TGraph::from_patterns([
            tp(var("z"), iri("q"), var("x")),
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o")),
            tp(var("o"), iri("r"), var("o")),
        ]);
        // The core is unique up to renaming; here folding keeps original
        // names, so we can compare directly.
        assert_eq!(c.s, expected);
        assert!(is_core_of(&c, &g));
    }

    #[test]
    fn clique_with_distinguished_anchor_is_core() {
        // (S, X) from Example 3: {(z,q,x), (x,p,y), (y,r,o1)} ∪ Kk — a core.
        let k = 4;
        let mut pats = vec![
            tp(var("z"), iri("q"), var("x")),
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o1")),
        ];
        for i in 1..=k {
            for j in (i + 1)..=k {
                pats.push(tp(var(&format!("o{i}")), iri("r"), var(&format!("o{j}"))));
            }
        }
        let g = GenTGraph::new(TGraph::from_patterns(pats), [v("x"), v("y"), v("z")]);
        assert!(is_core(&g));
    }

    #[test]
    fn core_is_idempotent() {
        let s = TGraph::from_patterns([
            tp(var("x"), iri("r"), var("y")),
            tp(var("x"), iri("r"), var("y2")),
            tp(var("y2"), iri("r"), var("y3")),
        ]);
        let g = GenTGraph::new(s, []);
        let c1 = core_of(&g);
        let c2 = core_of(&c1);
        assert_eq!(c1, c2);
    }

    #[test]
    fn cores_are_hom_equivalent_to_input() {
        let s = TGraph::from_patterns([
            tp(var("x"), iri("r"), var("y")),
            tp(var("y"), iri("r"), var("z")),
            tp(var("x"), iri("r"), var("w")),
            tp(var("w"), iri("r"), var("u")),
        ]);
        let g = GenTGraph::new(s, [v("x")]);
        let c = core_of(&g);
        assert!(hom_equivalent(&c, &g));
        assert!(is_core(&c));
    }

    #[test]
    fn constants_are_preserved() {
        // A variable pointing at a constant can fold onto another doing the
        // same; constants never fold.
        let s = TGraph::from_patterns([
            tp(var("x"), iri("p"), iri("c")),
            tp(var("y"), iri("p"), iri("c")),
        ]);
        let g = GenTGraph::new(s, []);
        let c = core_of(&g);
        assert_eq!(c.s.len(), 1);
        assert_eq!(c.s.iris().len(), 2); // p and c survive
    }
}
