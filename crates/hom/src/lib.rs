//! # wdsparql-hom
//!
//! The conjunctive-query toolkit of the workspace: t-graphs and generalised
//! t-graphs `(S, X)` (§2.1/§3 of the paper), the homomorphism relations
//! `(S,X) → (S',X)` and `(S,X) →µ G`, cores (Proposition 1), Gaifman
//! graphs, and treewidth (`tw`, `ctw`) with verified tree decompositions.
//!
//! Everything downstream — the width measures, the Theorem 1 evaluator and
//! the hardness reduction — is built from these primitives.

#![forbid(unsafe_code)]

pub mod core;
pub mod gaifman;
pub mod solver;
pub mod tgraph;
pub mod treewidth;
pub mod ugraph;

pub use crate::core::{core_of, hom_equivalent, is_core, is_core_of};
pub use gaifman::{ctw, gaifman as gaifman_graph, tw_gen};
pub use solver::{
    all_homs_into_graph, enumerate_homs_into_graph, find_hom, find_hom_into_graph,
    find_hom_into_graph_with, maps_into_graph, maps_to, SearchOrder,
};
pub use tgraph::{frozen_iri, theta, GenTGraph, TGraph, VarMap};
pub use treewidth::{
    decomposition_from_order, min_degree_order, min_fill_order, mmd_lower_bound, treewidth,
    treewidth_exact, verify_decomposition, width_of_order, TreeDecomposition, TwResult,
    EXACT_LIMIT,
};
pub use ugraph::{BitSet, UGraph};
