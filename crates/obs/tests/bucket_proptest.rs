//! Property tests for the histogram bucketing scheme: every u64
//! duration must land in exactly the bucket whose [floor, ceil] range
//! contains it, indices must be monotone, and recording must be
//! visible to percentile extraction.

use proptest::prelude::*;
use wdsparql_obs::{bucket_ceil, bucket_floor, bucket_index, Histogram, BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// An arbitrary duration lands in the bucket that brackets it.
    #[test]
    fn durations_land_in_their_bracketing_bucket(ns in any::<u64>()) {
        let i = bucket_index(ns);
        prop_assert!(i < BUCKETS, "index {i} out of range for {ns}");
        prop_assert!(bucket_floor(i) <= ns, "floor({i}) > {ns}");
        prop_assert!(ns <= bucket_ceil(i), "ceil({i}) < {ns}");
    }

    /// Indices never decrease as the value grows (adjacent probe).
    #[test]
    fn bucket_index_is_monotone(ns in any::<u64>()) {
        if ns < u64::MAX {
            prop_assert!(bucket_index(ns) <= bucket_index(ns + 1));
        }
        prop_assert!(bucket_index(ns / 2) <= bucket_index(ns));
    }

    /// A single recorded value is its own p50/p99 (the clamp to the
    /// recorded max makes singleton extraction exact).
    #[test]
    fn a_single_sample_is_every_percentile(ns in any::<u64>()) {
        let h = Histogram::new();
        h.record(ns);
        let s = h.capture();
        prop_assert_eq!(s.count(), 1);
        prop_assert_eq!(s.p50(), ns);
        prop_assert_eq!(s.p99(), ns);
    }
}
