//! validate_metrics — the CI schema gate for `--metrics-json` output.
//!
//! ```text
//! cargo run -p wdsparql-obs --example validate_metrics -- SNAPSHOT.json SCHEMA.json
//! ```
//!
//! Parses both documents with the crate's own JSON reader and checks
//! the snapshot for key presence and types against the schema
//! (`crates/obs/metrics-schema.json`). Exits nonzero listing every
//! violation, so a metrics rename or type change fails CI instead of
//! silently breaking downstream scrapers.

use std::process::ExitCode;
use wdsparql_obs::json;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [snapshot_path, schema_path] = args.as_slice() else {
        eprintln!("usage: validate_metrics SNAPSHOT.json SCHEMA.json");
        return ExitCode::from(2);
    };
    let snapshot = match load(snapshot_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {snapshot_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let schema = match load(schema_path) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {schema_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let errors = json::validate_schema(&snapshot, &schema);
    if errors.is_empty() {
        println!("validate_metrics: {snapshot_path} matches {schema_path}");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("schema violation: {e}");
        }
        eprintln!("validate_metrics: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

fn load(path: &str) -> Result<json::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    json::parse(&text).map_err(|e| e.to_string())
}
