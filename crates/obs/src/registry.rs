//! The process-wide metrics registry: a fixed catalog of the store
//! stack's counters, gauges and latency histograms, snapshotted to a
//! stable-schema JSON document.
//!
//! The catalog is a plain struct — registration is the field list, so
//! the hot path is exactly one atomic RMW per event with no name
//! lookup, no lock, and no allocation. `schema: 3` pins the JSON
//! layout; CI validates a live snapshot against
//! `crates/obs/metrics-schema.json` (key presence + types), and adding
//! a metric is a schema *addition*, never a mutation. (Schema 2 added
//! the streaming-execution metrics: `store.deadline_exceeded_total`,
//! `query.rows_streamed`, and the per-shard read-load sections
//! `shard_read_rows` / `shard_read_ns`. Schema 3 added the durability
//! metrics: `store.fsync_total`, `store.commit_retries_total`,
//! `store.segments_quarantined_total` and `store.recovery_ns`.)

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Fixed shard slots for the load-balance counters; stores with more
/// shards fold the overflow into the last slot.
pub const SHARD_SLOTS: usize = 16;

/// The process-wide metric catalog. One instance is meant to live in a
/// `OnceLock` owned by the instrumented crate; every field is
/// individually lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    // Counters — monotone event tallies.
    /// BGP queries planned+executed by the service layer.
    pub queries_total: Counter,
    /// Queries resolved to the worst-case-optimal strategy.
    pub queries_wco: Counter,
    /// Queries resolved to the pairwise bind-join strategy.
    pub queries_pairwise: Counter,
    /// Write batches that changed the store (epoch increments).
    pub epoch_bumps: Counter,
    /// Delta-segment folds (per graph `compact()` that had work).
    pub compactions: Counter,
    /// Delta segments appended by bulk loads.
    pub segments_created: Counter,
    /// Result-cache lookups answered from the cache.
    pub cache_hits: Counter,
    /// Result-cache lookups that had to compute.
    pub cache_misses: Counter,
    /// LRU evictions (capacity pressure).
    pub cache_evictions: Counter,
    /// Lookups that joined an in-flight computation instead of
    /// recomputing (stampede suppression).
    pub cache_stampede_waits: Counter,
    /// Sharded reads routed to a single shard by a bound subject.
    pub routed_reads: Counter,
    /// Sharded reads that had to fan out across every shard.
    pub fanout_reads: Counter,
    /// Budgeted queries that failed their deadline checkpoint.
    pub deadline_exceeded: Counter,
    /// `fsync`/`dir_sync` calls issued by the persistence layer.
    pub fsyncs: Counter,
    /// Transient-I/O retries spent by the persistence layer.
    pub commit_retries: Counter,
    /// Segments renamed aside at recovery after failing verification.
    pub segments_quarantined: Counter,

    // Gauges — last published observation (refreshed by `stats()`).
    /// Triples in the store (sharded: summed over shards).
    pub triples: Gauge,
    /// Distinct dictionary terms.
    pub terms: Gauge,
    /// Rows in the compacted base permutations.
    pub base_rows: Gauge,
    /// Rows pending in delta segments.
    pub delta_rows: Gauge,
    /// Pending delta segments.
    pub segments: Gauge,
    /// Store epoch (sharded: summed over shards).
    pub epoch: Gauge,
    /// Configured shard count (1 for an unsharded store).
    pub shard_count: Gauge,

    /// Rows ingested per shard slot — the load-balance signal
    /// (shard `i >= SHARD_SLOTS` folds into the last slot).
    pub shard_rows: [Counter; SHARD_SLOTS],
    /// Rows *served* per shard slot by routed/fan-out reads — the
    /// read-side load-balance twin of `shard_rows`.
    pub shard_read_rows: [Counter; SHARD_SLOTS],
    /// Per-shard read latency (ns) — splits the global `fanout_ns` by
    /// the shard that did the work, so a hot shard shows up by slot.
    pub shard_read_ns: [Histogram; SHARD_SLOTS],

    // Latency histograms (nanoseconds).
    /// End-to-end BGP query latency (plan + cache + execute).
    pub query_ns: Histogram,
    /// Join-order planning + strategy resolution latency.
    pub plan_ns: Histogram,
    /// `try_bulk_load` latency (lock + scatter + insert).
    pub bulk_load_ns: Histogram,
    /// Graph compaction latency.
    pub compact_ns: Histogram,
    /// Parallel shard fan-out read latency.
    pub fanout_ns: Histogram,
    /// Rows streamed per completed budgeted/limited query (a row-count
    /// histogram, not nanoseconds — LIMIT pushdown shows up as a low
    /// p50 against a large full-enumeration max).
    pub rows_streamed: Histogram,
    /// Durable-store recovery latency (`TripleStore::open`: verify +
    /// rebuild + replay).
    pub recovery_ns: Histogram,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A point-in-time copy of every metric, ready for JSON rendering.
    pub fn capture(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: vec![
                ("store.queries_total", self.queries_total.get()),
                ("store.queries_wco", self.queries_wco.get()),
                ("store.queries_pairwise", self.queries_pairwise.get()),
                ("store.epoch_bumps", self.epoch_bumps.get()),
                ("store.compactions", self.compactions.get()),
                ("store.segments_created", self.segments_created.get()),
                ("cache.hits", self.cache_hits.get()),
                ("cache.misses", self.cache_misses.get()),
                ("cache.evictions", self.cache_evictions.get()),
                ("cache.stampede_waits", self.cache_stampede_waits.get()),
                ("shard.routed_reads", self.routed_reads.get()),
                ("shard.fanout_reads", self.fanout_reads.get()),
                (
                    "store.deadline_exceeded_total",
                    self.deadline_exceeded.get(),
                ),
                ("store.fsync_total", self.fsyncs.get()),
                ("store.commit_retries_total", self.commit_retries.get()),
                (
                    "store.segments_quarantined_total",
                    self.segments_quarantined.get(),
                ),
            ],
            gauges: vec![
                ("store.triples", self.triples.get()),
                ("store.terms", self.terms.get()),
                ("store.base_rows", self.base_rows.get()),
                ("store.delta_rows", self.delta_rows.get()),
                ("store.segments", self.segments.get()),
                ("store.epoch", self.epoch.get()),
                ("shard.count", self.shard_count.get()),
            ],
            histograms: vec![
                ("query.total_ns", self.query_ns.capture()),
                ("query.plan_ns", self.plan_ns.capture()),
                ("store.bulk_load_ns", self.bulk_load_ns.capture()),
                ("store.compact_ns", self.compact_ns.capture()),
                ("shard.fanout_ns", self.fanout_ns.capture()),
                ("query.rows_streamed", self.rows_streamed.capture()),
                ("store.recovery_ns", self.recovery_ns.capture()),
            ],
            shard_rows: self.shard_rows.iter().map(Counter::get).collect(),
            shard_read_rows: self.shard_read_rows.iter().map(Counter::get).collect(),
            shard_read_ns: self.shard_read_ns.iter().map(Histogram::capture).collect(),
        }
    }

    /// The stable-schema JSON snapshot (`schema: 3`).
    pub fn to_json(&self) -> String {
        self.capture().to_json()
    }
}

/// An owned copy of the registry at one instant.
#[must_use]
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, HistogramSnapshot)>,
    shard_rows: Vec<u64>,
    shard_read_rows: Vec<u64>,
    shard_read_ns: Vec<HistogramSnapshot>,
}

impl RegistrySnapshot {
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    pub fn gauges(&self) -> &[(&'static str, u64)] {
        &self.gauges
    }

    pub fn histograms(&self) -> &[(&'static str, HistogramSnapshot)] {
        &self.histograms
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the snapshot as the `schema: 3` JSON document: fixed
    /// member order, exact u64 integers, each histogram summarized as
    /// `count`/`sum`/`max`/`p50`/`p90`/`p99`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": 3,\n  \"counters\": {\n");
        push_pairs(&mut out, &self.counters);
        out.push_str("  },\n  \"gauges\": {\n");
        push_pairs(&mut out, &self.gauges);
        out.push_str("  },\n  \"histograms\": {\n");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            let comma = if i + 1 < self.histograms.len() {
                ","
            } else {
                ""
            };
            out.push_str(&format!("    \"{name}\": {}{comma}\n", hist_json(h)));
        }
        out.push_str("  },\n  \"shard_rows\": [");
        push_u64s(&mut out, &self.shard_rows);
        out.push_str("],\n  \"shard_read_rows\": [");
        push_u64s(&mut out, &self.shard_read_rows);
        out.push_str("],\n  \"shard_read_ns\": [");
        for (i, h) in self.shard_read_ns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&hist_json(h));
        }
        out.push_str("]\n}\n");
        out
    }
}

/// One histogram summary object, shared by the named-histogram section
/// and the per-shard read-latency array.
fn hist_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        h.count(),
        h.sum(),
        h.max(),
        h.p50(),
        h.p90(),
        h.p99(),
    )
}

fn push_u64s(out: &mut String, values: &[u64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
}

fn push_pairs(out: &mut String, pairs: &[(&'static str, u64)]) {
    for (i, (name, v)) in pairs.iter().enumerate() {
        let comma = if i + 1 < pairs.len() { "," } else { "" };
        out.push_str(&format!("    \"{name}\": {v}{comma}\n"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn snapshot_json_parses_and_carries_the_recorded_values() {
        let r = Registry::new();
        r.queries_total.add(3);
        r.cache_hits.inc();
        r.triples.set(1234);
        r.shard_rows[2].add(50);
        r.shard_read_rows[3].add(7);
        r.shard_read_ns[3].record(4_000);
        r.deadline_exceeded.inc();
        r.rows_streamed.record(10);
        r.fsyncs.add(4);
        r.commit_retries.inc();
        r.segments_quarantined.inc();
        r.recovery_ns.record(8_000);
        r.query_ns.record(1_000);
        r.query_ns.record(2_000);
        let text = r.to_json();
        let doc = json::parse(&text).expect("snapshot must be valid json");
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("store.queries_total"))
                .and_then(json::Value::as_u64),
            Some(3)
        );
        assert_eq!(
            doc.get("gauges")
                .and_then(|g| g.get("store.triples"))
                .and_then(json::Value::as_u64),
            Some(1234)
        );
        let q = doc
            .get("histograms")
            .and_then(|h| h.get("query.total_ns"))
            .unwrap();
        assert_eq!(q.get("count").and_then(json::Value::as_u64), Some(2));
        match doc.get("shard_rows") {
            Some(json::Value::Arr(slots)) => {
                assert_eq!(slots.len(), SHARD_SLOTS);
                assert_eq!(slots[2].as_u64(), Some(50));
            }
            other => panic!("shard_rows should be an array, got {other:?}"),
        }
        match doc.get("shard_read_rows") {
            Some(json::Value::Arr(slots)) => {
                assert_eq!(slots.len(), SHARD_SLOTS);
                assert_eq!(slots[3].as_u64(), Some(7));
            }
            other => panic!("shard_read_rows should be an array, got {other:?}"),
        }
        match doc.get("shard_read_ns") {
            Some(json::Value::Arr(slots)) => {
                assert_eq!(slots.len(), SHARD_SLOTS);
                assert_eq!(slots[3].get("count").and_then(json::Value::as_u64), Some(1));
                assert_eq!(slots[0].get("count").and_then(json::Value::as_u64), Some(0));
            }
            other => panic!("shard_read_ns should be an array, got {other:?}"),
        }
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("store.deadline_exceeded_total"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
        let streamed = doc
            .get("histograms")
            .and_then(|h| h.get("query.rows_streamed"))
            .unwrap();
        assert_eq!(streamed.get("sum").and_then(json::Value::as_u64), Some(10));
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("store.fsync_total"))
                .and_then(json::Value::as_u64),
            Some(4)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("store.commit_retries_total"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
        assert_eq!(
            doc.get("counters")
                .and_then(|c| c.get("store.segments_quarantined_total"))
                .and_then(json::Value::as_u64),
            Some(1)
        );
        let recovery = doc
            .get("histograms")
            .and_then(|h| h.get("store.recovery_ns"))
            .unwrap();
        assert_eq!(recovery.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(r.capture().counter("cache.hits"), Some(1));
    }

    #[test]
    fn snapshot_json_matches_the_checked_in_schema() {
        let schema_text = include_str!("../metrics-schema.json");
        let schema = json::parse(schema_text).expect("schema file must be valid json");
        let snapshot = json::parse(&Registry::new().to_json()).expect("snapshot json");
        let errors = json::validate_schema(&snapshot, &schema);
        assert!(
            errors.is_empty(),
            "snapshot violates its schema: {errors:?}"
        );
    }
}
