//! Per-query execution profiles: a [`Span`] tree the store stack fills
//! in while a query runs and the CLI renders as an
//! EXPLAIN-ANALYZE-style tree.
//!
//! A span is a named, optionally timed node with ordered `key=value`
//! fields and children. The store attaches one [`QueryProfile`] to a
//! `PlannedQuery`/`ShardedPlannedQuery` when profiling was requested;
//! nothing here is collected on the unprofiled path.

use std::fmt;
use std::time::Duration;

/// One node of an execution profile: a named phase with an optional
/// wall-clock duration, display fields, and child phases.
#[derive(Clone, Debug, Default)]
pub struct Span {
    name: String,
    duration: Option<Duration>,
    fields: Vec<(String, String)>,
    children: Vec<Span>,
}

impl Span {
    pub fn new(name: impl Into<String>) -> Span {
        Span {
            name: name.into(),
            ..Span::default()
        }
    }

    /// Builder-style field append (insertion order is display order).
    pub fn field(mut self, key: impl Into<String>, value: impl fmt::Display) -> Span {
        self.add_field(key, value);
        self
    }

    pub fn add_field(&mut self, key: impl Into<String>, value: impl fmt::Display) {
        self.fields.push((key.into(), value.to_string()));
    }

    /// Builder-style duration.
    pub fn timed(mut self, duration: Duration) -> Span {
        self.duration = Some(duration);
        self
    }

    pub fn set_duration(&mut self, duration: Duration) {
        self.duration = Some(duration);
    }

    pub fn push(&mut self, child: Span) {
        self.children.push(child);
    }

    /// Builder-style child append.
    pub fn with(mut self, child: Span) -> Span {
        self.push(child);
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn duration(&self) -> Option<Duration> {
        self.duration
    }

    pub fn fields(&self) -> &[(String, String)] {
        &self.fields
    }

    pub fn children(&self) -> &[Span] {
        &self.children
    }

    /// The value of field `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn render(
        &self,
        out: &mut fmt::Formatter<'_>,
        prefix: &str,
        last: bool,
        root: bool,
    ) -> fmt::Result {
        if root {
            write!(out, "{}", self.name)?;
        } else {
            let branch = if last { "└─ " } else { "├─ " };
            write!(out, "{prefix}{branch}{}", self.name)?;
        }
        if let Some(d) = self.duration {
            write!(out, " {}", fmt_duration(d))?;
        }
        if !self.fields.is_empty() {
            write!(out, " [")?;
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    write!(out, ", ")?;
                }
                write!(out, "{k}={v}")?;
            }
            write!(out, "]")?;
        }
        writeln!(out)?;
        let child_prefix = if root {
            String::new()
        } else {
            format!("{prefix}{}", if last { "   " } else { "│  " })
        };
        for (i, child) in self.children.iter().enumerate() {
            child.render(out, &child_prefix, i + 1 == self.children.len(), false)?;
        }
        Ok(())
    }
}

/// A completed per-query execution profile (the root span and its
/// tree). Displays as a box-drawing tree, one line per span.
#[derive(Clone, Debug)]
pub struct QueryProfile {
    pub root: Span,
}

impl QueryProfile {
    pub fn new(root: Span) -> QueryProfile {
        QueryProfile { root }
    }
}

impl fmt::Display for QueryProfile {
    fn fmt(&self, out: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.render(out, "", true, true)
    }
}

/// Human units: ns below 1 µs, fractional µs below 1 ms, else ms.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1_000.0)
    } else {
        format!("{:.3}ms", ns as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_a_nested_tree_with_fields_and_durations() {
        let profile = QueryProfile::new(
            Span::new("query")
                .timed(Duration::from_micros(1500))
                .field("strategy", "wco")
                .with(
                    Span::new("plan")
                        .timed(Duration::from_nanos(800))
                        .field("order", "1,0,2"),
                )
                .with(
                    Span::new("execute")
                        .timed(Duration::from_micros(1400))
                        .with(Span::new("level ?x").field("rows", 12))
                        .with(Span::new("level ?y").field("rows", 3)),
                ),
        );
        let text = profile.to_string();
        assert_eq!(
            text,
            "query 1.500ms [strategy=wco]\n\
             ├─ plan 800ns [order=1,0,2]\n\
             └─ execute 1.400ms\n\
             \u{20}  ├─ level ?x [rows=12]\n\
             \u{20}  └─ level ?y [rows=3]\n"
        );
        assert_eq!(profile.root.get("strategy"), Some("wco"));
        assert_eq!(
            profile.root.children()[1].children()[0].get("rows"),
            Some("12")
        );
    }
}
