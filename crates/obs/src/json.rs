//! A minimal JSON value parser and schema validator — just enough to
//! let CI check a metrics snapshot against the checked-in
//! `metrics-schema.json` (the workspace has no serde).
//!
//! The parser accepts the full JSON grammar the registry emits:
//! objects, arrays, strings (with the common escapes), non-negative
//! integers, and the literals. [`validate_schema`] then checks **key
//! presence and types**: every key the schema names must exist in the
//! snapshot with the named type (`"u64"` or `"string"`, or a nested
//! object/array validated recursively). Extra snapshot keys are
//! allowed — the schema is a floor, so adding metrics is not a
//! breaking change.

use std::fmt;

/// A parsed JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// All registry numbers are non-negative integers; floats are
    /// rejected at parse time to keep u64 round trips exact.
    Num(u64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "u64",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A parse error with a byte offset into the input.
#[derive(Debug)]
pub struct ParseError {
    pub at: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after the document"));
    }
    Ok(value)
}

fn err(at: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        at,
        message: message.into(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, format!("expected `{}`", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'0'..=b'9') => parse_number(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(&c) => Err(err(*pos, format!("unexpected character `{}`", c as char))),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Value,
) -> Result<Value, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{word}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if let Some(b'.' | b'e' | b'E' | b'-') = bytes.get(*pos) {
        return Err(err(
            *pos,
            "only non-negative integers appear in metric snapshots",
        ));
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .map(Value::Num)
        .ok_or_else(|| err(start, "number does not fit in u64"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "unsupported escape")),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let ch_len = utf8_len(c);
                let chunk = bytes
                    .get(*pos..*pos + ch_len)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| err(*pos, "invalid utf-8 in string"))?;
                out.push_str(chunk);
                *pos += ch_len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// Checks `snapshot` against `schema`: every schema key must be present
/// in the snapshot with the schema'd type. Leaf schema values are the
/// type-name strings `"u64"` / `"string"`; objects recurse; an array
/// schema holds one element schema every snapshot element must match.
/// Returns the list of violations (empty = valid).
pub fn validate_schema(snapshot: &Value, schema: &Value) -> Vec<String> {
    let mut errors = Vec::new();
    validate_at(snapshot, schema, "$", &mut errors);
    errors
}

fn validate_at(snapshot: &Value, schema: &Value, path: &str, errors: &mut Vec<String>) {
    match schema {
        Value::Str(ty) => {
            let ok = match ty.as_str() {
                "u64" => matches!(snapshot, Value::Num(_)),
                "string" => matches!(snapshot, Value::Str(_)),
                other => {
                    errors.push(format!("{path}: schema names unknown type `{other}`"));
                    return;
                }
            };
            if !ok {
                errors.push(format!(
                    "{path}: expected {ty}, found {}",
                    snapshot.type_name()
                ));
            }
        }
        Value::Obj(members) => match snapshot {
            Value::Obj(_) => {
                for (key, sub) in members {
                    match snapshot.get(key) {
                        Some(v) => validate_at(v, sub, &format!("{path}.{key}"), errors),
                        None => errors.push(format!("{path}: missing key `{key}`")),
                    }
                }
            }
            other => errors.push(format!(
                "{path}: expected object, found {}",
                other.type_name()
            )),
        },
        Value::Arr(elem_schema) => match (snapshot, elem_schema.first()) {
            (Value::Arr(items), Some(sub)) => {
                for (i, item) in items.iter().enumerate() {
                    validate_at(item, sub, &format!("{path}[{i}]"), errors);
                }
            }
            (Value::Arr(_), None) => {}
            (other, _) => errors.push(format!(
                "{path}: expected array, found {}",
                other.type_name()
            )),
        },
        other => errors.push(format!(
            "{path}: schema values must be type names, objects or arrays, found {}",
            other.type_name()
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": 1, "b": [2, "x"], "c": {"d": true, "e": null}}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(
            v.get("b"),
            Some(&Value::Arr(vec![Value::Num(2), Value::Str("x".into())]))
        );
        assert_eq!(
            v.get("c").and_then(|c| c.get("d")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a""#).is_err());
    }

    #[test]
    fn parses_escapes() {
        let v = parse(r#""a\n\"bA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\n\"bA"));
    }

    #[test]
    fn schema_validation_reports_missing_keys_and_type_mismatches() {
        let schema = parse(r#"{"counters": {"hits": "u64"}, "names": ["string"]}"#).unwrap();
        let good = parse(r#"{"counters": {"hits": 3, "extra": 9}, "names": ["a"]}"#).unwrap();
        assert!(validate_schema(&good, &schema).is_empty());
        let bad = parse(r#"{"counters": {"hits": "three"}, "names": [1]}"#).unwrap();
        let errors = validate_schema(&bad, &schema);
        assert_eq!(errors.len(), 2, "{errors:?}");
        assert!(errors[0].contains("$.counters.hits"));
        let missing = parse(r#"{"names": []}"#).unwrap();
        let errors = validate_schema(&missing, &schema);
        assert_eq!(errors, vec!["$: missing key `counters`".to_string()]);
    }
}
