//! Lock-free metric primitives: [`Counter`], [`Gauge`], and a
//! log-linear bucketed latency [`Histogram`].
//!
//! Every record path is a handful of relaxed atomic RMWs — no locks, no
//! allocation — so instrumentation can sit on warm paths without
//! perturbing what it measures. Reads ([`Histogram::capture`]) are
//! torn-snapshot tolerant by design: concurrent recorders may land
//! between bucket loads, which skews a live snapshot by at most the
//! in-flight events; merged totals are recomputed from the bucket
//! counts so a snapshot is always internally consistent.
//!
//! ## Histogram scheme
//!
//! Values (u64, nanoseconds by convention) are bucketed log-linearly:
//! values below [`SUB_BUCKETS`] get exact singleton buckets, and every
//! power-of-two octave above is split into [`SUB_BUCKETS`] = 16 linear
//! sub-buckets, bounding relative bucket width at 1/16 = 6.25%. The
//! whole u64 range maps into [`BUCKETS`] = 976 buckets, so one
//! histogram is ~8 KiB of atomics. Percentiles are *exact nearest-rank
//! selections over the bucketed distribution*: the reported value is
//! the selected bucket's inclusive upper bound (clamped to the true
//! recorded maximum), i.e. within 6.25% of the true order statistic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event tally.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        // relaxed-ok: an independent event tally; nothing is ordered
        // against it and snapshots tolerate in-flight increments.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // relaxed-ok: reading a statistic, not synchronizing state.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Gauge {
        Gauge(AtomicU64::new(0))
    }

    pub fn set(&self, v: u64) {
        // relaxed-ok: a published observation; readers want *a* recent
        // value, not a synchronized one.
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        // relaxed-ok: reading a statistic, not synchronizing state.
        self.0.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power-of-two octave (relative width 1/16).
pub const SUB_BUCKETS: usize = 16;

/// Total bucket count covering all of u64: [`SUB_BUCKETS`] exact
/// singleton buckets below 16, then 60 octaves (2^4 … 2^63) of
/// [`SUB_BUCKETS`] each.
pub const BUCKETS: usize = 61 * SUB_BUCKETS;

/// The bucket index of a value. Monotone non-decreasing in `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    // Highest set bit m ≥ 4; the top 5 bits (1 implicit + 4 linear)
    // select the sub-bucket within the octave.
    let m = 63 - v.leading_zeros() as usize;
    let sub = (v >> (m - 4)) as usize; // in [16, 32)
    (m - 3) * SUB_BUCKETS + (sub - SUB_BUCKETS)
}

/// The smallest value landing in bucket `i` (inverse of
/// [`bucket_index`] on bucket boundaries).
pub fn bucket_floor(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let m = i / SUB_BUCKETS + 3;
    let sub = i % SUB_BUCKETS + SUB_BUCKETS;
    (sub as u64) << (m - 4)
}

/// The largest value landing in bucket `i` (inclusive).
pub fn bucket_ceil(i: usize) -> u64 {
    if i + 1 < BUCKETS {
        bucket_floor(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A lock-free log-linear histogram of u64 values (latencies in
/// nanoseconds by convention). ~8 KiB of relaxed atomics; `record` is
/// four RMWs and never allocates.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    pub fn record(&self, v: u64) {
        // relaxed-ok: independent tallies; capture() recomputes totals
        // from the bucket counts so torn reads stay self-consistent.
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        // relaxed-ok: as above.
        self.sum.fetch_add(v, Ordering::Relaxed);
        // relaxed-ok: monotone max; fetch_max commutes with itself.
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`Duration`] in nanoseconds (saturating at u64::MAX —
    /// ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the distribution. Snapshots of the same
    /// histogram taken under concurrent recording may differ by the
    /// in-flight events; each snapshot is internally consistent.
    pub fn capture(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            // relaxed-ok: reading statistics, not synchronizing.
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total = counts.iter().sum();
        HistogramSnapshot {
            counts,
            total,
            // relaxed-ok: reading statistics, not synchronizing.
            sum: self.sum.load(Ordering::Relaxed),
            // relaxed-ok: reading statistics, not synchronizing.
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state. Merging is
/// commutative and associative (element-wise bucket sums), so per-shard
/// or per-thread histograms fold into one distribution in any order.
#[must_use]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Folds `other` into `self` (element-wise bucket sums).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        // The sum tracks the atomic's wrapping semantics; counts never
        // realistically overflow but a nanosecond sum can.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn max(&self) -> u64 {
        self.max
    }

    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.total).unwrap_or(0)
    }

    /// The nearest-rank `q`-quantile (`q` in `[0, 1]`): the inclusive
    /// upper bound of the bucket holding the ⌈q·n⌉-th smallest recorded
    /// value, clamped to the recorded maximum. Exact selection over the
    /// bucketed distribution; within one bucket width (≤6.25%) of the
    /// true order statistic.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_ceil(i).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(42);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_boundaries_are_exact_below_sixteen_and_log_linear_above() {
        // Singleton buckets: exact.
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_floor(v as usize), v);
            assert_eq!(bucket_ceil(v as usize), v);
        }
        // First octave is still exact (width 1): 16..32 → 16..32.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        // Second octave: width 2.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_floor(32), 32);
        assert_eq!(bucket_ceil(32), 33);
        // Octave boundaries never misalign: the floor of each bucket
        // indexes back to itself, and ceil(i) + 1 == floor(i + 1).
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_index(bucket_ceil(i)), i, "ceil of bucket {i}");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_ceil(i) + 1, bucket_floor(i + 1), "bucket {i} gap");
            }
        }
        // The last bucket absorbs u64::MAX.
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_ceil(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn percentiles_are_exact_on_singleton_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            // 1..=15 land in exact buckets; keep all values < 16 so the
            // percentile is the true order statistic.
            h.record(v % 15 + 1);
        }
        let s = h.capture();
        assert_eq!(s.count(), 100);
        // Values cycle 2,3,…,15,1 — the median of the multiset is 8.
        assert_eq!(s.p50(), 8);
        assert_eq!(s.quantile(1.0), 15);
        assert_eq!(s.quantile(0.0), 1, "rank clamps to the minimum");
    }

    #[test]
    fn percentiles_clamp_to_the_recorded_max() {
        let h = Histogram::new();
        h.record(1_000_003);
        let s = h.capture();
        // One sample: every quantile is that sample, not its bucket's
        // upper bound.
        assert_eq!(s.p50(), 1_000_003);
        assert_eq!(s.p99(), 1_000_003);
        assert_eq!(s.max(), 1_000_003);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            h.capture()
        };
        let a = mk(&[1, 5, 900, 42]);
        let b = mk(&[17, 17, 1 << 40]);
        let c = mk(&[0, u64::MAX, 333]);
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "merge must be associative");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "merge must be commutative");
        assert_eq!(ab_c.count(), 10);
        assert_eq!(ab_c.max(), u64::MAX);
    }

    #[test]
    fn merged_percentiles_match_a_single_histogram_over_the_union() {
        let h_all = Histogram::new();
        let h_lo = Histogram::new();
        let h_hi = Histogram::new();
        for v in 0..1000u64 {
            h_all.record(v * 37);
            if v % 2 == 0 {
                h_lo.record(v * 37);
            } else {
                h_hi.record(v * 37);
            }
        }
        let mut merged = h_lo.capture();
        merged.merge(&h_hi.capture());
        assert_eq!(merged, h_all.capture());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.capture().count(), 40_000);
    }
}
