//! # wdsparql-obs
//!
//! The observability layer for the `wdsparql` workspace: hand-rolled,
//! dependency-free, and lock-free on every record path (the container
//! has no crates.io, and the store's hot loops cannot afford a mutex).
//!
//! Three pieces:
//!
//! * [`metrics`] — [`Counter`]/[`Gauge`] over relaxed atomics and a
//!   log-linear bucketed [`Histogram`] (16 sub-buckets per power-of-two
//!   octave, ≤6.25% relative bucket width) whose [`HistogramSnapshot`]s
//!   merge associatively and extract p50/p90/p99 by exact nearest-rank
//!   selection over the buckets;
//! * [`registry`] — a fixed-catalog process-wide [`Registry`] of the
//!   store stack's counters, gauges and latency histograms, rendered to
//!   a stable-schema JSON snapshot (`schema: 1`, validated in CI
//!   against `crates/obs/metrics-schema.json`);
//! * [`profile`] — the per-query execution profile: a [`Span`] tree
//!   ([`QueryProfile`]) that the store threads through
//!   `PlannedQuery`/`ShardedPlannedQuery` and the CLI renders as an
//!   EXPLAIN-ANALYZE-style tree under `store --profile`.
//!
//! [`json`] is the minimal JSON value parser backing the CI schema
//! check ([`json::validate_schema`]); it exists because the workspace
//! has no serde.

#![forbid(unsafe_code)]

pub mod json;
pub mod metrics;
pub mod profile;
pub mod registry;

pub use metrics::{
    bucket_ceil, bucket_floor, bucket_index, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS,
    SUB_BUCKETS,
};
pub use profile::{QueryProfile, Span};
pub use registry::{Registry, RegistrySnapshot, SHARD_SLOTS};
