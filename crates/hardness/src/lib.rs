//! # wdsparql-hardness
//!
//! The W\[1\]-hardness machinery of §4: minor maps and grid minors
//! ([`minor`]), the Lemma 2 construction `(B, X)` ([`mod@lemma2`]), the
//! Lemma 3 witness search ([`mod@lemma3`]), a baseline clique solver
//! ([`clique`]) and the full fpt-reduction from p-CLIQUE to
//! p-co-wdEVAL ([`reduction`]).
//!
//! Substitution note (see DESIGN.md): the Robertson–Seymour excluded-grid
//! function `w` is replaced by direct minor-map construction on query
//! families with explicitly known grid/clique structure; everything
//! downstream of the minor map is the paper's construction verbatim.

#![forbid(unsafe_code)]

pub mod clique;
pub mod emb;
pub mod lemma2;
pub mod lemma3;
pub mod minor;
pub mod reduction;

pub use clique::{has_k_clique, max_clique_size};
pub use emb::{emb_brute_force, emb_query, emb_target, emb_via_filter};
pub use lemma2::{lemma2, pair_bijection, slot_respecting_hom_exists, Lemma2, Lemma2Error};
pub use lemma3::{lemma3_witness, Lemma3Witness};
pub use minor::{
    clique_minor_map, embed_grid, find_grid_minor_onto, grid_identity_map, make_onto,
    validate_minor_map, MinorMap,
};
pub use reduction::{clique_family_parameter, reduce_clique, ReductionError, ReductionInstance};
