//! Grid minors and minor maps (§4.2 / appendix).
//!
//! A *minor map* from `H` to `H'` assigns to each vertex of `H` a
//! non-empty connected *branch set* of `H'`, pairwise disjoint, such that
//! every edge of `H` is witnessed between the corresponding branch sets.
//! The Lemma 2 construction needs a minor map from the `(k × K)`-grid
//! **onto** its target component, so [`make_onto`] absorbs uncovered
//! vertices into adjacent branch sets (always possible on a connected
//! target).
//!
//! The paper obtains grid minors from the Robertson–Seymour Excluded Grid
//! Theorem, whose bounding function `w` is astronomically large and
//! non-constructive in practice. As documented in DESIGN.md, we instead
//! (a) take the identity map when the target *is* a grid, (b) take
//! singleton branch sets into cliques, and (c) fall back to a brute-force
//! subgraph embedding for small targets. The construction downstream is
//! unchanged.

use wdsparql_hom::UGraph;

/// A minor map from the `rows × cols` grid to a target graph: grid vertex
/// `(i, p)` (1-based in the paper; 0-based here) owns branch set
/// `gamma[i * cols + p]`.
#[derive(Clone, Debug)]
pub struct MinorMap {
    pub rows: usize,
    pub cols: usize,
    pub gamma: Vec<Vec<usize>>,
}

impl MinorMap {
    /// Branch set of grid vertex `(i, p)` (0-based).
    pub fn branch(&self, i: usize, p: usize) -> &[usize] {
        &self.gamma[i * self.cols + p]
    }

    /// The grid vertex owning target vertex `a`, if any (branch sets are
    /// disjoint).
    pub fn owner(&self, a: usize) -> Option<(usize, usize)> {
        for i in 0..self.rows {
            for p in 0..self.cols {
                if self.branch(i, p).contains(&a) {
                    return Some((i, p));
                }
            }
        }
        None
    }

    /// Is this map onto (every target vertex covered)?
    pub fn is_onto(&self, target_n: usize) -> bool {
        (0..target_n).all(|a| self.owner(a).is_some())
    }
}

/// Validates the three minor-map conditions against `target`.
pub fn validate_minor_map(map: &MinorMap, target: &UGraph) -> Result<(), String> {
    let grid = UGraph::grid(map.rows, map.cols);
    if map.gamma.len() != map.rows * map.cols {
        return Err("wrong number of branch sets".into());
    }
    let mut seen = vec![false; target.n()];
    for (idx, branch) in map.gamma.iter().enumerate() {
        if branch.is_empty() {
            return Err(format!("branch set {idx} is empty"));
        }
        for &a in branch {
            if a >= target.n() {
                return Err(format!("vertex {a} out of range"));
            }
            if seen[a] {
                return Err(format!("vertex {a} in two branch sets"));
            }
            seen[a] = true;
        }
        // Connectivity of the branch set.
        let (sub, _) = target.induced(branch);
        if !sub.is_connected() {
            return Err(format!("branch set {idx} is not connected"));
        }
    }
    for (u, v) in grid.edges() {
        let found = map.gamma[u]
            .iter()
            .any(|&a| map.gamma[v].iter().any(|&b| target.has_edge(a, b)));
        if !found {
            return Err(format!("grid edge ({u},{v}) not witnessed"));
        }
    }
    Ok(())
}

/// The identity minor map when the target *is* the `rows × cols` grid.
pub fn grid_identity_map(rows: usize, cols: usize) -> MinorMap {
    MinorMap {
        rows,
        cols,
        gamma: (0..rows * cols).map(|v| vec![v]).collect(),
    }
}

/// Singleton branch sets into a clique `K_m` with `m ≥ rows·cols` (any
/// graph is a minor of a same-size clique).
pub fn clique_minor_map(rows: usize, cols: usize, clique_n: usize) -> Option<MinorMap> {
    (clique_n >= rows * cols).then(|| MinorMap {
        rows,
        cols,
        gamma: (0..rows * cols).map(|v| vec![v]).collect(),
    })
}

/// Brute-force subgraph embedding of the grid into `target` (singleton
/// branch sets): feasible only for small targets; used as a fallback for
/// irregular graphs in tests.
pub fn embed_grid(target: &UGraph, rows: usize, cols: usize) -> Option<MinorMap> {
    let grid = UGraph::grid(rows, cols);
    let gn = grid.n();
    if gn > target.n() {
        return None;
    }
    let mut assign: Vec<usize> = Vec::with_capacity(gn);
    fn rec(grid: &UGraph, target: &UGraph, assign: &mut Vec<usize>) -> bool {
        let next = assign.len();
        if next == grid.n() {
            return true;
        }
        for cand in 0..target.n() {
            if assign.contains(&cand) {
                continue;
            }
            let ok = (0..next)
                .all(|prev| !grid.has_edge(prev, next) || target.has_edge(assign[prev], cand));
            if ok {
                assign.push(cand);
                if rec(grid, target, assign) {
                    return true;
                }
                assign.pop();
            }
        }
        false
    }
    rec(&grid, target, &mut assign).then(|| MinorMap {
        rows,
        cols,
        gamma: assign.into_iter().map(|a| vec![a]).collect(),
    })
}

/// Extends a minor map to be **onto** a connected target by absorbing each
/// uncovered vertex into an adjacent branch set (preserves connectivity,
/// disjointness and edge witnesses).
pub fn make_onto(mut map: MinorMap, target: &UGraph) -> MinorMap {
    let mut owner: Vec<Option<usize>> = vec![None; target.n()];
    for (idx, branch) in map.gamma.iter().enumerate() {
        for &a in branch {
            owner[a] = Some(idx);
        }
    }
    loop {
        let mut grew = false;
        for a in 0..target.n() {
            if owner[a].is_some() {
                continue;
            }
            if let Some(idx) = target.neighbors(a).iter().find_map(|nb| owner[nb]) {
                owner[a] = Some(idx);
                map.gamma[idx].push(a);
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    map
}

/// One-stop shop: find a minor map from the `rows × cols` grid onto
/// `target` (connected). Tries the identity (target is the grid), clique
/// shortcut, then brute-force embedding; extends to onto.
pub fn find_grid_minor_onto(target: &UGraph, rows: usize, cols: usize) -> Option<MinorMap> {
    let grid = UGraph::grid(rows, cols);
    let candidate = if target.n() == grid.n() && target == &grid {
        Some(grid_identity_map(rows, cols))
    } else if is_clique(target) {
        clique_minor_map(rows, cols, target.n())
    } else {
        embed_grid(target, rows, cols)
    }?;
    let onto = make_onto(candidate, target);
    validate_minor_map(&onto, target).ok()?;
    onto.is_onto(target.n()).then_some(onto)
}

fn is_clique(g: &UGraph) -> bool {
    let n = g.n();
    g.edge_count() == n * (n - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_map_validates() {
        let g = UGraph::grid(3, 3);
        let m = grid_identity_map(3, 3);
        assert!(validate_minor_map(&m, &g).is_ok());
        assert!(m.is_onto(9));
    }

    #[test]
    fn clique_map_validates_and_becomes_onto() {
        let g = UGraph::complete(7);
        let m = clique_minor_map(2, 2, 7).unwrap();
        assert!(validate_minor_map(&m, &g).is_ok());
        assert!(!m.is_onto(7));
        let onto = make_onto(m, &g);
        assert!(validate_minor_map(&onto, &g).is_ok());
        assert!(onto.is_onto(7));
    }

    #[test]
    fn clique_too_small_fails() {
        assert!(clique_minor_map(3, 3, 8).is_none());
    }

    #[test]
    fn embed_grid_into_supergraph() {
        // A 2x2 grid (= C4) embeds into the 3x3 grid.
        let target = UGraph::grid(3, 3);
        let m = embed_grid(&target, 2, 2).unwrap();
        assert!(validate_minor_map(&m, &target).is_ok());
    }

    #[test]
    fn embed_fails_into_too_sparse_target() {
        // 2x2 grid needs a 4-cycle; a tree has none.
        let target = UGraph::path(6);
        assert!(embed_grid(&target, 2, 2).is_none());
    }

    #[test]
    fn find_grid_minor_onto_end_to_end() {
        for target in [UGraph::grid(3, 3), UGraph::complete(10)] {
            let m = find_grid_minor_onto(&target, 3, 3).expect("minor map exists");
            assert!(validate_minor_map(&m, &target).is_ok());
            assert!(m.is_onto(target.n()));
        }
        // Path target cannot host a 2x2 grid minor (treewidth 1 < 2).
        assert!(find_grid_minor_onto(&UGraph::path(8), 2, 2).is_none());
    }

    #[test]
    fn validate_rejects_bad_maps() {
        let g = UGraph::grid(2, 2);
        // Overlapping branch sets.
        let bad = MinorMap {
            rows: 2,
            cols: 2,
            gamma: vec![vec![0], vec![0], vec![2], vec![3]],
        };
        assert!(validate_minor_map(&bad, &g).is_err());
        // Missing edge witness: map C4 vertices so a grid edge is broken.
        let mut h = UGraph::new(4);
        h.add_edge(0, 1);
        h.add_edge(2, 3);
        let broken = MinorMap {
            rows: 2,
            cols: 2,
            gamma: vec![vec![0], vec![1], vec![2], vec![3]],
        };
        assert!(validate_minor_map(&broken, &h).is_err());
    }
}
