//! A baseline clique solver, used to cross-check the p-CLIQUE reduction
//! end-to-end (experiment E10).

use wdsparql_hom::UGraph;

/// Does `h` contain a clique of size `k`? Branch-and-bound backtracking
/// with degree pruning — exponential, but `H` is the *parameter-sized*
/// side of the reduction.
pub fn has_k_clique(h: &UGraph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if k == 1 {
        return h.n() > 0;
    }
    let candidates: Vec<usize> = (0..h.n()).filter(|&v| h.degree(v) + 1 >= k).collect();
    let mut clique: Vec<usize> = Vec::with_capacity(k);
    extend(h, k, &mut clique, &candidates)
}

fn extend(h: &UGraph, k: usize, clique: &mut Vec<usize>, candidates: &[usize]) -> bool {
    if clique.len() == k {
        return true;
    }
    if clique.len() + candidates.len() < k {
        return false;
    }
    for (idx, &v) in candidates.iter().enumerate() {
        clique.push(v);
        let next: Vec<usize> = candidates[idx + 1..]
            .iter()
            .copied()
            .filter(|&u| h.has_edge(u, v))
            .collect();
        if extend(h, k, clique, &next) {
            return true;
        }
        clique.pop();
    }
    false
}

/// The maximum clique size of `h` (for small graphs).
pub fn max_clique_size(h: &UGraph) -> usize {
    let mut k = 0;
    while has_k_clique(h, k + 1) {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_cliques() {
        let g = UGraph::complete(5);
        assert!(has_k_clique(&g, 5));
        assert!(!has_k_clique(&g, 6));
        assert_eq!(max_clique_size(&g), 5);
    }

    #[test]
    fn cycle_has_no_triangle() {
        assert!(!has_k_clique(&UGraph::cycle(5), 3));
        assert!(has_k_clique(&UGraph::cycle(5), 2));
        assert_eq!(max_clique_size(&UGraph::cycle(5)), 2);
    }

    #[test]
    fn grid_max_clique_is_two() {
        assert_eq!(max_clique_size(&UGraph::grid(3, 3)), 2);
    }

    #[test]
    fn edgeless_and_trivial_cases() {
        let g = UGraph::new(4);
        assert!(has_k_clique(&g, 0));
        assert!(has_k_clique(&g, 1));
        assert!(!has_k_clique(&g, 2));
        assert_eq!(max_clique_size(&UGraph::new(0)), 0);
    }

    #[test]
    fn planted_clique_is_found() {
        let mut g = UGraph::cycle(8);
        for u in [1usize, 3, 5, 7] {
            for v in [1usize, 3, 5, 7] {
                if u < v {
                    g.add_edge(u, v);
                }
            }
        }
        assert!(has_k_clique(&g, 4));
        assert!(!has_k_clique(&g, 5));
    }
}
