//! The Lemma 2 construction (§4.2 + appendix): from a generalised t-graph
//! `(S, X)` of large core treewidth and an undirected graph `H`, build
//! `(B, X)` such that
//!
//! 1. every triple of `S` over `X` alone is kept in `B`,
//! 2. `(B, X) → (S, X)`,
//! 3. `H` has a k-clique **iff** `(S, X) → (B, X)`,
//! 4. the construction is fpt in `(k, |S|)`.
//!
//! This is Grohe's JACM'07 construction extended with distinguished
//! elements: variables of the chosen Gaifman component `F_1` of the core
//! blow up into tuples `(v, e, i, p, ?a)` with `v ∈ e ⇔ i ∈ p`, and the
//! consistency filter (†) ties the `v`'s and `e`'s together along `F_1`.

use crate::minor::{find_grid_minor_onto, MinorMap};
use std::collections::BTreeMap;
use wdsparql_hom::{core_of, gaifman_graph, GenTGraph, TGraph, UGraph};
use wdsparql_rdf::{Term, TriplePattern, Variable};

/// The output of the construction, with enough provenance for the tests
/// and the experiments harness.
#[derive(Debug)]
pub struct Lemma2 {
    /// The constructed `(B, X)`.
    pub b: GenTGraph,
    /// The core `(C, X)` of the input.
    pub core: GenTGraph,
    /// The Gaifman component `F_1` (variables, by index into `f1_vars`).
    pub f1_vars: Vec<Variable>,
    /// The minor map from the `(k × K)`-grid onto `F_1`.
    pub minor: MinorMap,
    /// `k` and `K = C(k, 2)`.
    pub k: usize,
    pub cap_k: usize,
    /// Per-slot tuple-variable domains: `Π^{-1}(?a)` for each `?a ∈ F_1`.
    pub tuple_domains: BTreeMap<Variable, Vec<Variable>>,
}

/// Errors of the construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Lemma2Error {
    /// No Gaifman component admits a `(k × K)`-grid minor map (the input's
    /// ctw is too small, or the fallback finder gave up — see DESIGN.md).
    NoGridMinor,
    /// `H` has no edges (the construction needs `E(H) ≠ ∅`; a graph with
    /// no edges has no k-clique for k ≥ 2 anyway).
    EmptyH,
}

impl std::fmt::Display for Lemma2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Lemma2Error::NoGridMinor => write!(f, "no (k×K)-grid minor map found"),
            Lemma2Error::EmptyH => write!(f, "H has no edges"),
        }
    }
}

impl std::error::Error for Lemma2Error {}

/// The pair bijection `ρ : {0..K-1} → {{i, j} | i < j < k}`.
pub fn pair_bijection(k: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..k {
        for j in (i + 1)..k {
            out.push((i, j));
        }
    }
    out
}

/// Runs the construction. `h` is the clique-search graph, `k ≥ 2` the
/// clique size.
pub fn lemma2(s: &GenTGraph, h: &UGraph, k: usize) -> Result<Lemma2, Lemma2Error> {
    assert!(k >= 2);
    let h_edges = h.edges();
    if h_edges.is_empty() {
        return Err(Lemma2Error::EmptyH);
    }
    let cap_k = k * (k - 1) / 2;
    let core = core_of(s);
    let (gg, gg_vars) = gaifman_graph(&core);

    // Pick a component admitting the grid minor (the paper picks one of
    // treewidth ≥ w(K); we directly search for the minor).
    let mut chosen: Option<(Vec<usize>, MinorMap)> = None;
    for comp in gg.components() {
        let (sub, back) = gg.induced(&comp);
        if let Some(m) = find_grid_minor_onto(&sub, k, cap_k) {
            chosen = Some((back, m));
            break;
        }
    }
    let Some((back, minor)) = chosen else {
        return Err(Lemma2Error::NoGridMinor);
    };
    let f1_vars: Vec<Variable> = back.iter().map(|&i| gg_vars[i]).collect();
    let rho = pair_bijection(k);

    // owner(a) for every F1-local index a.
    let owner: BTreeMap<usize, (usize, usize)> = (0..f1_vars.len())
        .map(|a| (a, minor.owner(a).expect("minor map is onto F1")))
        .collect();
    let var_index: BTreeMap<Variable, usize> =
        f1_vars.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    // The tuple variables ?(v, e, i, p, ?a), grouped by ?a.
    // For a fixed ?a, (i, p) is determined (branch sets are disjoint), so
    // we enumerate (v, e) pairs with v ∈ e ⇔ i ∈ ρ(p).
    #[allow(clippy::needless_range_loop)]
    let tuple_vars: Vec<Vec<TupleVar>> = (0..f1_vars.len())
        .map(|a| {
            let (i, p) = owner[&a];
            let (pi, pj) = rho[p];
            let i_in_p = i == pi || i == pj;
            let mut out = Vec::new();
            for v in 0..h.n() {
                for (eidx, &(eu, ew)) in h_edges.iter().enumerate() {
                    let v_in_e = v == eu || v == ew;
                    if v_in_e == i_in_p {
                        out.push(TupleVar {
                            v,
                            e: eidx,
                            variable: Variable::new(&format!(
                                "L2v{v}e{eu}_{ew}i{i}p{p}a_{}",
                                f1_vars[a].name()
                            )),
                        });
                    }
                }
            }
            out
        })
        .collect();

    // Build Tr' ∪ Tr0.
    let mut b = TGraph::new();
    for t in core.s.iter() {
        let non_x: Vec<Variable> = t
            .vars()
            .into_iter()
            .filter(|v| !core.x.contains(v))
            .collect();
        let all_in_f1 = non_x.iter().all(|v| var_index.contains_key(v));
        if !all_in_f1 {
            // Tr0: a variable outside F1 (other Gaifman component).
            b.insert(*t);
            continue;
        }
        if non_x.is_empty() {
            // Ground-over-X triple: kept verbatim (condition 1).
            b.insert(*t);
            continue;
        }
        // Tr': expand each F1-variable position into its tuple variables,
        // subject to the consistency filter (†).
        expand_triple(t, &core, &var_index, &owner, &tuple_vars, &mut b);
    }

    let tuple_domains: BTreeMap<Variable, Vec<Variable>> = f1_vars
        .iter()
        .enumerate()
        .map(|(a, &slot)| (slot, tuple_vars[a].iter().map(|t| t.variable).collect()))
        .collect();

    Ok(Lemma2 {
        b: GenTGraph::new(b, core.x.iter().copied()),
        core,
        f1_vars,
        minor,
        k,
        cap_k,
        tuple_domains,
    })
}

/// Decides `(S, X) → (B, X)` (condition (3) of Lemma 2) by the
/// *slot-respecting* search.
///
/// Why this is equivalent: any homomorphism `h : (C, X) → (B, X)` composed
/// with `Π` is an endomorphism of the core `(C, X)`, hence an automorphism
/// `s`; then `h ∘ s^{-1}` is a homomorphism with `Π ∘ (h ∘ s^{-1}) = id`.
/// So a homomorphism exists iff one exists that maps every `F_1` variable
/// `?a` into its own tuple fibre `Π^{-1}(?a)` and every other variable to
/// itself — exactly the normalisation used in the appendix proof ("it
/// suffices to consider g = h ∘ s^{-1}"). This kills the slot-permutation
/// symmetry that makes the generic search blow up, reducing the check to
/// the intended `(v, e)`-consistency space of size ≈ `|V(H)|^k · |E(H)|^K`.
pub fn slot_respecting_hom_exists(out: &Lemma2) -> bool {
    // Order the F_1 variables; everything else is forced to the identity.
    let order: Vec<Variable> = out.f1_vars.clone();
    let mut assign: BTreeMap<Variable, Variable> = BTreeMap::new();
    // Triples of C indexed by the *last* (w.r.t. `order`) F_1 variable they
    // mention, so each is checked as soon as it is fully determined.
    let position: BTreeMap<Variable, usize> =
        order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut triples_at: Vec<Vec<TriplePattern>> = vec![Vec::new(); order.len()];
    let mut ground_triples: Vec<TriplePattern> = Vec::new();
    for t in out.core.s.iter() {
        let last = t
            .vars()
            .into_iter()
            .filter_map(|v| position.get(&v).copied())
            .max();
        match last {
            Some(i) => triples_at[i].push(*t),
            None => ground_triples.push(*t),
        }
    }
    // Triples without F_1 variables must be in B verbatim (they are, by
    // construction — Tr0 and the X-only triples).
    if !ground_triples.iter().all(|t| out.b.s.contains(t)) {
        return false;
    }
    fn rec(
        out: &Lemma2,
        order: &[Variable],
        triples_at: &[Vec<TriplePattern>],
        assign: &mut BTreeMap<Variable, Variable>,
        depth: usize,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let slot = order[depth];
        for &cand in &out.tuple_domains[&slot] {
            assign.insert(slot, cand);
            let consistent = triples_at[depth].iter().all(|t| {
                let f = |v: Variable| assign.get(&v).map(|&w| Term::Var(w));
                out.b.s.contains(&t.substitute(&f))
            });
            if consistent && rec(out, order, triples_at, assign, depth + 1) {
                return true;
            }
            assign.remove(&slot);
        }
        false
    }
    rec(out, &order, &triples_at, &mut assign, 0)
}

struct TupleVar {
    v: usize,
    e: usize,
    variable: Variable,
}

/// Expands one core triple into all its (†)-consistent preimages.
fn expand_triple(
    t: &TriplePattern,
    core: &GenTGraph,
    var_index: &BTreeMap<Variable, usize>,
    owner: &BTreeMap<usize, (usize, usize)>,
    tuple_vars: &[Vec<TupleVar>],
    out: &mut TGraph,
) {
    // For each position: either a fixed term, or the list of candidate
    // tuple variables (with their v, e, i, p data for the filter).
    enum Slot<'a> {
        Fixed(Term),
        Choices(usize, &'a [TupleVar]), // F1 index + candidates
    }
    let slots: Vec<Slot> = t
        .positions()
        .into_iter()
        .map(|term| match term {
            Term::Var(v) if !core.x.contains(&v) => {
                let a = var_index[&v];
                Slot::Choices(a, &tuple_vars[a])
            }
            fixed => Slot::Fixed(fixed),
        })
        .collect();
    // Cartesian product over the choice slots with the (†) filter.
    let mut picked: Vec<Option<(usize, usize, usize, Term)>> = vec![None; 3]; // (a, v, e, var)
    fn rec(
        slots: &[Slot],
        owner: &BTreeMap<usize, (usize, usize)>,
        picked: &mut Vec<Option<(usize, usize, usize, Term)>>,
        pos: usize,
        out: &mut TGraph,
    ) {
        if pos == slots.len() {
            let mut terms = [Term::Iri(wdsparql_rdf::Iri::new("_")); 3];
            for (idx, slot) in slots.iter().enumerate() {
                terms[idx] = match slot {
                    Slot::Fixed(term) => *term,
                    Slot::Choices(_, _) => picked[idx].as_ref().unwrap().3,
                };
            }
            out.insert(TriplePattern::new(terms[0], terms[1], terms[2]));
            return;
        }
        match &slots[pos] {
            Slot::Fixed(_) => rec(slots, owner, picked, pos + 1, out),
            Slot::Choices(a, cands) => {
                let (i_a, p_a) = owner[a];
                'cand: for c in *cands {
                    // (†): same i ⇒ same v; same p ⇒ same e, against all
                    // previously picked tuple variables in this triple.
                    for prev in picked.iter().take(pos).flatten() {
                        let (a_prev, v_prev, e_prev, _) = *prev;
                        let (i_prev, p_prev) = owner[&a_prev];
                        if i_prev == i_a && v_prev != c.v {
                            continue 'cand;
                        }
                        if p_prev == p_a && e_prev != c.e {
                            continue 'cand;
                        }
                    }
                    picked[pos] = Some((*a, c.v, c.e, Term::Var(c.variable)));
                    rec(slots, owner, picked, pos + 1, out);
                    picked[pos] = None;
                }
            }
        }
    }
    rec(&slots, owner, &mut picked, 0, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_hom::{find_hom, maps_to};
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;

    fn v(n: &str) -> Variable {
        Variable::new(n)
    }

    /// (S, X) = clique-child style: {(x,p,y), (y,r,o1)} ∪ K_m(o1..om),
    /// X = {x, y}. Its core is itself; F1 = K_m.
    fn clique_source(m: usize) -> GenTGraph {
        let mut pats = vec![
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o1")),
        ];
        for i in 1..=m {
            for j in (i + 1)..=m {
                pats.push(tp(var(&format!("o{i}")), iri("r"), var(&format!("o{j}"))));
            }
        }
        GenTGraph::new(TGraph::from_patterns(pats), [v("x"), v("y")])
    }

    #[test]
    fn condition1_x_triples_survive() {
        let s = clique_source(2);
        let h = UGraph::complete(3);
        let out = lemma2(&s, &h, 2).unwrap();
        assert!(out.b.s.contains(&tp(var("x"), iri("p"), var("y"))));
    }

    #[test]
    fn condition2_b_maps_to_s() {
        let s = clique_source(2);
        let h = UGraph::complete(3);
        let out = lemma2(&s, &h, 2).unwrap();
        assert!(maps_to(&out.b, &s), "(B,X) → (S,X)");
    }

    #[test]
    fn condition3_clique_iff_hom_k2() {
        // k = 2: H has a 2-clique (an edge) iff (S,X) → (B,X).
        let s = clique_source(2);
        let with_edges = UGraph::path(3);
        let out = lemma2(&s, &with_edges, 2).unwrap();
        assert!(find_hom(&s, &out.b.s).is_some(), "edges ⇒ hom");
        // A graph with no edges is rejected up front (and indeed has no
        // 2-clique).
        let mut lonely = UGraph::new(3);
        lonely.add_edge(0, 1); // one edge so construction proceeds
        let out2 = lemma2(&s, &lonely, 2).unwrap();
        assert!(find_hom(&s, &out2.b.s).is_some());
    }

    #[test]
    fn condition3_positive_direction_k3() {
        // k = 3, K = 3: needs a 3×3 grid minor, so m = 9 clique source.
        // H with a triangle ⇒ the homomorphism exists (and is found fast).
        let s = clique_source(9);
        let tri = UGraph::complete(3);
        let out = lemma2(&s, &tri, 3).unwrap();
        assert!(find_hom(&s, &out.b.s).is_some(), "triangle ⇒ hom");
        assert!(slot_respecting_hom_exists(&out));
    }

    #[test]
    fn condition3_negative_direction_k3() {
        // The *generic* refutation is an NP-hard instance by design (the
        // slot-permutation symmetry); the slot-respecting search — exact
        // by the core-automorphism argument — decides it instantly.
        let s = clique_source(9);
        for h in [UGraph::path(3), UGraph::cycle(5), UGraph::grid(2, 3)] {
            let out = lemma2(&s, &h, 3).unwrap();
            assert!(
                !slot_respecting_hom_exists(&out),
                "triangle-free H ⇒ no hom"
            );
        }
    }

    #[test]
    fn slot_respecting_check_agrees_with_generic_solver_k2() {
        // At k = 2 the generic search is feasible: the two deciders must
        // agree on both directions.
        let s = clique_source(2);
        for h in [UGraph::path(3), UGraph::complete(4), UGraph::cycle(5), {
            let mut g = UGraph::new(4);
            g.add_edge(0, 1);
            g
        }] {
            let out = lemma2(&s, &h, 2).unwrap();
            assert_eq!(
                find_hom(&s, &out.b.s).is_some(),
                slot_respecting_hom_exists(&out),
                "deciders disagree"
            );
        }
    }

    #[test]
    fn too_small_ctw_is_rejected() {
        // A path-shaped source has ctw 1: no 2×1... actually a (2×1)-grid
        // minor needs just one edge in the Gaifman graph, so use k = 3
        // (needs a 3×3 grid) against a path source.
        let pats = vec![
            tp(var("x"), iri("p"), var("y")),
            tp(var("y"), iri("r"), var("o1")),
            tp(var("o1"), iri("r"), var("o2")),
        ];
        let s = GenTGraph::new(TGraph::from_patterns(pats), [v("x"), v("y")]);
        let h = UGraph::complete(4);
        assert_eq!(lemma2(&s, &h, 3).unwrap_err(), Lemma2Error::NoGridMinor);
    }

    #[test]
    fn empty_h_is_rejected() {
        let s = clique_source(2);
        let h = UGraph::new(3);
        assert_eq!(lemma2(&s, &h, 2).unwrap_err(), Lemma2Error::EmptyH);
    }

    #[test]
    fn pair_bijection_shape() {
        let rho = pair_bijection(4);
        assert_eq!(rho.len(), 6);
        assert_eq!(rho[0], (0, 1));
        assert_eq!(rho[5], (2, 3));
    }

    #[test]
    fn b_size_scales_with_h() {
        let s = clique_source(2);
        let small = lemma2(&s, &UGraph::complete(3), 2).unwrap();
        let large = lemma2(&s, &UGraph::complete(5), 2).unwrap();
        assert!(large.b.s.len() > small.b.s.len());
    }
}
