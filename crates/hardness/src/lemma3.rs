//! Lemma 3: in a wdPF of domination width ≥ k there is a subtree `T` and an
//! `(S, vars(T)) ∈ GtG(T)` with `ctw(S, vars(T)) ≥ k` that is *minimal*:
//! any element mapping into it receives a map back.
//!
//! Implemented exactly as in the paper's proof: collect the qualifying set
//! `G` (elements of ctw ≥ k not dominated by any low-width element), build
//! the homomorphism digraph on `G`, and pick any element of a *source*
//! strongly connected component (no incoming edges from outside).

use wdsparql_hom::{ctw, maps_to};
use wdsparql_tree::Wdpf;
use wdsparql_width::{forest_subtrees, gtg, ForestSubtree, GtgElement};

/// A Lemma 3 witness.
pub struct Lemma3Witness {
    pub subtree: ForestSubtree,
    pub element: GtgElement,
    pub ctw: usize,
}

/// Finds a Lemma 3 witness for threshold `k`, or `None` if `dw(F) < k`.
pub fn lemma3_witness(f: &Wdpf, k: usize) -> Option<Lemma3Witness> {
    for st in forest_subtrees(f) {
        let elements = gtg(f, &st);
        if elements.is_empty() {
            continue;
        }
        let widths: Vec<usize> = elements.iter().map(|e| ctw(&e.graph).width).collect();
        // G: elements of ctw ≥ k with no dominator of ctw ≤ k−1.
        let g_idx: Vec<usize> = (0..elements.len())
            .filter(|&i| widths[i] >= k)
            .filter(|&i| {
                !(0..elements.len())
                    .any(|d| widths[d] < k && maps_to(&elements[d].graph, &elements[i].graph))
            })
            .collect();
        if g_idx.is_empty() {
            continue; // this subtree is (k−1)-dominated
        }
        // Homomorphism digraph on G; pick a source SCC.
        let n = g_idx.len();
        let mut adj = vec![vec![false; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a != b && maps_to(&elements[g_idx[a]].graph, &elements[g_idx[b]].graph) {
                    adj[a][b] = true;
                }
            }
        }
        let comp = scc(&adj);
        // A source component: no edge u→v with comp[u] ≠ comp[v] entering it.
        let n_comps = comp.iter().max().unwrap() + 1;
        let mut has_incoming = vec![false; n_comps];
        for u in 0..n {
            for v in 0..n {
                if adj[u][v] && comp[u] != comp[v] {
                    has_incoming[comp[v]] = true;
                }
            }
        }
        let source = (0..n_comps)
            .find(|&c| !has_incoming[c])
            .expect("a DAG has a source");
        let pick = (0..n).find(|&i| comp[i] == source).unwrap();
        let element = elements[g_idx[pick]].clone();
        let width = widths[g_idx[pick]];
        return Some(Lemma3Witness {
            subtree: st,
            element,
            ctw: width,
        });
    }
    None
}

/// Tarjan SCC on a dense digraph; returns component ids.
fn scc(adj: &[Vec<bool>]) -> Vec<usize> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut comp = vec![usize::MAX; n];
    let mut counter = 0usize;
    let mut n_comps = 0usize;

    // Iterative Tarjan to avoid recursion-depth worries.
    enum Frame {
        Enter(usize),
        Resume(usize, usize),
    }
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut frames = vec![Frame::Enter(start)];
        while let Some(frame) = frames.pop() {
            match frame {
                Frame::Enter(u) => {
                    index[u] = counter;
                    low[u] = counter;
                    counter += 1;
                    stack.push(u);
                    on_stack[u] = true;
                    frames.push(Frame::Resume(u, 0));
                }
                Frame::Resume(u, mut next) => {
                    let mut descended = false;
                    while next < n {
                        let v = next;
                        next += 1;
                        if !adj[u][v] {
                            continue;
                        }
                        if index[v] == usize::MAX {
                            frames.push(Frame::Resume(u, next));
                            frames.push(Frame::Enter(v));
                            descended = true;
                            break;
                        } else if on_stack[v] {
                            low[u] = low[u].min(index[v]);
                        }
                    }
                    if descended {
                        continue;
                    }
                    if low[u] == index[u] {
                        while let Some(w) = stack.pop() {
                            on_stack[w] = false;
                            comp[w] = n_comps;
                            if w == u {
                                break;
                            }
                        }
                        n_comps += 1;
                    }
                    // Propagate low to parent (the next Resume on the stack).
                    if let Some(Frame::Resume(parent, _)) = frames.last() {
                        let parent = *parent;
                        low[parent] = low[parent].min(low[u]);
                    }
                }
            }
        }
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_hom::GenTGraph;
    use wdsparql_workloads::{clique_child_tree, fk_forest};

    #[test]
    fn witness_on_unbounded_family() {
        // Q_k has dw = bw = k−1: a witness must exist at threshold k−1.
        for k in 3..=4 {
            let f = Wdpf::new(vec![clique_child_tree(k)]);
            let w = lemma3_witness(&f, k - 1).expect("dw ≥ k−1");
            assert!(w.ctw >= k - 1);
            // Minimality: every GtG element of the same subtree mapping
            // into the witness receives a map back.
            let elements = gtg(&f, &w.subtree);
            for e in &elements {
                if maps_to(&e.graph, &w.element.graph) {
                    assert!(maps_to(&w.element.graph, &e.graph), "minimality violated");
                }
            }
        }
    }

    #[test]
    fn no_witness_below_the_width() {
        let f = Wdpf::new(vec![clique_child_tree(3)]);
        // dw = 2: at threshold 3 there is no witness.
        assert!(lemma3_witness(&f, 3).is_none());
    }

    #[test]
    fn bounded_family_has_no_witness_at_2() {
        // dw(F_k) = 1: no witness at threshold 2 despite elements of
        // ctw = k−1 ≥ 2 existing (they are dominated).
        let f = fk_forest(4);
        assert!(lemma3_witness(&f, 2).is_none());
    }

    #[test]
    fn witness_element_is_a_gtg_member() {
        let f = Wdpf::new(vec![clique_child_tree(3)]);
        let w = lemma3_witness(&f, 2).unwrap();
        let elements = gtg(&f, &w.subtree);
        // Same delta must appear among the recomputed elements (renaming
        // of fresh variables may differ, so compare via mutual homs).
        let equivalent = |a: &GenTGraph, b: &GenTGraph| maps_to(a, b) && maps_to(b, a);
        assert!(elements
            .iter()
            .any(|e| equivalent(&e.graph, &w.element.graph)));
    }
}
