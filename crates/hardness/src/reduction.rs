//! The fpt-reduction from p-CLIQUE to p-co-wdEVAL (§4.2).
//!
//! Given an undirected graph `H`, a clique size `k` and a wdPF `F` of
//! sufficient domination width (in the paper: found by enumerating the
//! class until `dw ≥ w(C(k,2))`; here: supplied by a query family, see the
//! substitution note in DESIGN.md):
//!
//! 1. Lemma 3 yields a subtree `T` and a minimal `(S, vars(T)) ∈ GtG(T)`
//!    of large ctw.
//! 2. Lemma 2 turns `(S, vars(T))` and `H` into `(B, vars(T))`.
//! 3. `B` is frozen into an RDF graph `G` via `Ψ`, and `µ = Ψ|vars(T)`.
//!
//! Correctness: `H` has a k-clique **iff** `µ ∉ ⟦F⟧_G`.

use crate::lemma2::{lemma2, Lemma2, Lemma2Error};
use crate::lemma3::{lemma3_witness, Lemma3Witness};
use wdsparql_hom::UGraph;
use wdsparql_rdf::{Mapping, RdfGraph};
use wdsparql_tree::Wdpf;

/// The output instance of the reduction.
#[derive(Debug)]
pub struct ReductionInstance {
    pub forest: Wdpf,
    pub graph: RdfGraph,
    pub mu: Mapping,
    /// Provenance for inspection/experiments.
    pub lemma2: Lemma2,
    pub witness_ctw: usize,
}

/// Errors of the reduction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReductionError {
    /// `dw(F)` is smaller than the requested threshold — pick a wider
    /// family member (the paper enumerates the class further).
    WidthTooSmall {
        threshold: usize,
    },
    Lemma2(Lemma2Error),
}

impl std::fmt::Display for ReductionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReductionError::WidthTooSmall { threshold } => {
                write!(f, "dw(F) < {threshold}: family member too narrow")
            }
            ReductionError::Lemma2(e) => write!(f, "lemma 2 failed: {e}"),
        }
    }
}

impl std::error::Error for ReductionError {}

/// Runs the reduction for `(H, k)` against the forest `F`.
///
/// `threshold` is the required `ctw` of the Lemma 3 witness; the paper
/// uses `w(C(k,2))`, we use the exact requirement of our minor-map
/// finders: the witness core must admit a `(k × C(k,2))`-grid minor, which
/// the clique/grid families guarantee by construction once
/// `ctw ≥ k·C(k,2) − 1`.
pub fn reduce_clique(
    f: Wdpf,
    h: &UGraph,
    k: usize,
    threshold: usize,
) -> Result<ReductionInstance, ReductionError> {
    let Lemma3Witness {
        element,
        ctw: witness_ctw,
        ..
    } = lemma3_witness(&f, threshold).ok_or(ReductionError::WidthTooSmall { threshold })?;
    let out = lemma2(&element.graph, h, k).map_err(ReductionError::Lemma2)?;
    // Freeze B into an RDF graph; µ is the frozen identity on vars(T) = X.
    let (graph, mu) = out.b.freeze(&out.b.x.clone());
    Ok(ReductionInstance {
        forest: f,
        graph,
        mu,
        lemma2: out,
        witness_ctw,
    })
}

/// The family-side helper: the least clique-family parameter `m` such that
/// the clique-child query `Q_m` supports the `(k × C(k,2))`-grid minor,
/// namely `m = k · C(k,2)` (each grid vertex gets its own clique vertex).
pub fn clique_family_parameter(k: usize) -> usize {
    k * (k * (k - 1) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clique::has_k_clique;
    use wdsparql_core::check_forest;
    use wdsparql_workloads::clique_child_tree;

    fn run(h: &UGraph, k: usize) -> (bool, bool) {
        let m = clique_family_parameter(k).max(2);
        let f = Wdpf::new(vec![clique_child_tree(m)]);
        let inst = reduce_clique(f, h, k, m - 1).expect("reduction succeeds");
        let clique = has_k_clique(h, k);
        let member = check_forest(&inst.forest, &inst.graph, &inst.mu);
        (clique, member)
    }

    #[test]
    fn k2_reduction_agrees_with_edge_detection() {
        // k = 2: 2-clique = an edge.
        for (h, label) in [
            (UGraph::path(3), "path"),
            (UGraph::cycle(4), "cycle"),
            (UGraph::complete(4), "clique"),
        ] {
            let (clique, member) = run(&h, 2);
            assert!(clique, "{label} has an edge");
            assert!(!member, "{label}: clique ⇒ µ ∉ ⟦F⟧_G");
        }
        // H with a single edge plus isolated vertices still has a 2-clique;
        // the no-edge case is excluded by the construction (EmptyH) and is
        // trivially clique-free.
        let mut h = UGraph::new(4);
        h.add_edge(2, 3);
        let (clique, member) = run(&h, 2);
        assert!(clique && !member);
    }

    #[test]
    fn width_too_small_is_reported() {
        let f = Wdpf::new(vec![clique_child_tree(2)]);
        let err = reduce_clique(f, &UGraph::complete(3), 2, 5).unwrap_err();
        assert_eq!(err, ReductionError::WidthTooSmall { threshold: 5 });
    }

    #[test]
    fn family_parameter_growth() {
        assert_eq!(clique_family_parameter(2), 2);
        assert_eq!(clique_family_parameter(3), 9);
        assert_eq!(clique_family_parameter(4), 24);
    }
}
