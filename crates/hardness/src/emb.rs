//! The embedding problem `EMB(H)` and its FILTER encoding (§5).
//!
//! The conclusions observe that well-designed patterns with FILTER express
//! conjunctive queries with inequalities, so for each class `H` of graphs
//! there is a FILTER class whose co-evaluation problem is polynomially
//! equivalent to `EMB(H)`: given `H ∈ H` and `H'`, is there an *injective*
//! homomorphism from `H` to `H'`? For the class of paths, `EMB` is in FPT
//! (colour coding) yet NP-hard — so the PTIME/W\[1\]-hard dichotomy of
//! Theorem 3 cannot extend to FILTER as-is.
//!
//! This module makes the encoding executable: [`emb_query`] builds the
//! pattern + inequality filter, [`emb_via_filter`] decides embedding
//! through the SPARQL semantics, and [`emb_brute_force`] is the direct
//! baseline the encoding is differential-tested against.

use wdsparql_algebra::{eval_filter, FilterExpr, GraphPattern};
use wdsparql_hom::UGraph;
use wdsparql_rdf::{iri, tp, var, RdfGraph, Triple, Variable};

/// The FILTER encoding of `EMB(H)`: an AND-pattern with one triple per
/// edge of `H` (symmetrised) and the pairwise-inequality filter.
pub fn emb_query(h: &UGraph) -> (GraphPattern, FilterExpr) {
    assert!(h.n() > 0, "EMB needs a non-empty pattern graph");
    let node_var = |u: usize| var(&format!("emb{u}"));
    let mut triples = Vec::new();
    for (u, w) in h.edges() {
        triples.push(tp(node_var(u), iri("edge"), node_var(w)));
    }
    // Isolated vertices still need a binding: anchor them on a vertex
    // marker triple.
    for u in 0..h.n() {
        if h.degree(u) == 0 {
            triples.push(tp(node_var(u), iri("vertex"), iri("yes")));
        }
    }
    let pattern = GraphPattern::and_all(triples);
    let filter = FilterExpr::all_different(
        (0..h.n()).map(|u| node_var(u).as_var().expect("variables by construction")),
    );
    (pattern, filter)
}

/// Encodes the target graph `H'` as RDF: symmetric `edge` triples plus a
/// `vertex` marker per vertex.
pub fn emb_target(target: &UGraph) -> RdfGraph {
    let name = |u: usize| format!("t{u}");
    let mut g = RdfGraph::new();
    for u in 0..target.n() {
        g.insert(Triple::from_strs(&name(u), "vertex", "yes"));
    }
    for (u, w) in target.edges() {
        g.insert(Triple::from_strs(&name(u), "edge", &name(w)));
        g.insert(Triple::from_strs(&name(w), "edge", &name(u)));
    }
    g
}

/// Decides `EMB(H, H')` through the SPARQL FILTER semantics.
pub fn emb_via_filter(h: &UGraph, target: &UGraph) -> bool {
    let (pattern, filter) = emb_query(h);
    let g = emb_target(target);
    !eval_filter(&pattern, &filter, &g).is_empty()
}

/// Direct baseline: backtracking search for an injective homomorphism.
pub fn emb_brute_force(h: &UGraph, target: &UGraph) -> bool {
    if h.n() > target.n() {
        return false;
    }
    let mut assign: Vec<usize> = Vec::with_capacity(h.n());
    fn rec(h: &UGraph, target: &UGraph, assign: &mut Vec<usize>) -> bool {
        let next = assign.len();
        if next == h.n() {
            return true;
        }
        for cand in 0..target.n() {
            if assign.contains(&cand) {
                continue;
            }
            let ok = (0..next)
                .all(|prev| !h.has_edge(prev, next) || target.has_edge(assign[prev], cand));
            if ok {
                assign.push(cand);
                if rec(h, target, assign) {
                    return true;
                }
                assign.pop();
            }
        }
        false
    }
    rec(h, target, &mut assign)
}

/// Marker type for variables used by the encoding (exposed for tests).
pub fn emb_vars(h: &UGraph) -> Vec<Variable> {
    (0..h.n())
        .map(|u| Variable::new(&format!("emb{u}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_into_cycle_embeds() {
        assert!(emb_via_filter(&UGraph::path(4), &UGraph::cycle(5)));
        assert!(emb_brute_force(&UGraph::path(4), &UGraph::cycle(5)));
    }

    #[test]
    fn long_path_does_not_embed_into_short_cycle() {
        // P6 (6 vertices) cannot inject into C5 (5 vertices).
        assert!(!emb_via_filter(&UGraph::path(6), &UGraph::cycle(5)));
        assert!(!emb_brute_force(&UGraph::path(6), &UGraph::cycle(5)));
    }

    #[test]
    fn embedding_differs_from_homomorphism() {
        // C6 maps homomorphically onto C3 (wrap around) but does not embed.
        let c6 = UGraph::cycle(6);
        let c3 = UGraph::cycle(3);
        assert!(!emb_via_filter(&c6, &c3));
        // Without the filter, solutions exist (the plain homomorphism).
        let (pattern, _) = emb_query(&c6);
        let g = emb_target(&c3);
        assert!(!wdsparql_algebra::eval(&pattern, &g).is_empty());
    }

    #[test]
    fn triangle_needs_a_triangle() {
        assert!(!emb_via_filter(&UGraph::complete(3), &UGraph::cycle(5)));
        assert!(emb_via_filter(&UGraph::complete(3), &UGraph::complete(4)));
    }

    #[test]
    fn isolated_vertices_consume_capacity() {
        // 3 isolated vertices embed iff the target has ≥ 3 vertices.
        let h = UGraph::new(3);
        assert!(emb_via_filter(&h, &UGraph::path(3)));
        assert!(!emb_via_filter(&h, &UGraph::path(2)));
    }

    #[test]
    fn filter_encoding_agrees_with_brute_force() {
        let mut state = 0x1234_5678_9ABCu64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        for trial in 0..25 {
            let hn = 2 + next(3) as usize;
            let tn = 2 + next(4) as usize;
            let mut h = UGraph::new(hn);
            let mut t = UGraph::new(tn);
            for u in 0..hn {
                for w in (u + 1)..hn {
                    if next(2) == 0 {
                        h.add_edge(u, w);
                    }
                }
            }
            for u in 0..tn {
                for w in (u + 1)..tn {
                    if next(3) < 2 {
                        t.add_edge(u, w);
                    }
                }
            }
            assert_eq!(
                emb_via_filter(&h, &t),
                emb_brute_force(&h, &t),
                "trial {trial}"
            );
        }
    }
}
