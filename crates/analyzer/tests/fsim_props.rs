//! Property tests for the crash simulator and the commit-protocol
//! spec. All properties replay under `PROPTEST_SEED=<u64>` (reported on
//! failure by the vendored proptest).
//!
//! * random op sequences, fully synced, collapse to exactly one crash
//!   image that equals the live state — the reordering/torn machinery
//!   never invents nondeterminism where durability was established;
//! * the correct protocol's recovery is idempotent and invariant-clean
//!   across *every* crash point of randomly sized workloads (D1–D4 via
//!   [`proto::explore`], which runs recovery twice per image);
//! * a removed-and-`dir_sync`ed name never resurrects in any crash
//!   image, whatever happens afterwards (journal prefix ordering).

use proptest::prelude::*;
use std::collections::BTreeSet;
use wdsparql_analyzer::fsim::proto::ProtocolVariant;
use wdsparql_analyzer::fsim::{proto, CrashOpts, SimFs};

/// Interprets an abstract `(opcode, name, name2, len)` script against
/// the fs, consulting a mirror of the live namespace so every op is
/// valid. `pool` bounds which names the script may touch.
fn apply_script(
    fs: &SimFs,
    live: &mut BTreeSet<String>,
    script: &[(u8, u8, u8, u8)],
    pool: &[&str],
) {
    for &(op, a, b, len) in script {
        let name = pool[a as usize % pool.len()].to_string();
        let other = pool[b as usize % pool.len()].to_string();
        let data = vec![a ^ b; usize::from(len % 6) + 1];
        match op % 8 {
            0 | 1 => {
                if live.contains(&name) {
                    fs.append(&name, &data).unwrap();
                } else {
                    fs.create(&name).unwrap();
                    live.insert(name);
                }
            }
            2 => {
                if live.contains(&name) {
                    fs.write_at(&name, usize::from(b % 7), &data).unwrap();
                }
            }
            3 => {
                if live.contains(&name) {
                    fs.truncate(&name, usize::from(len % 9)).unwrap();
                }
            }
            4 => {
                if live.contains(&name) {
                    fs.fsync(&name).unwrap();
                }
            }
            5 => {
                if live.contains(&name) && name != other {
                    fs.rename(&name, &other).unwrap();
                    live.remove(&name);
                    live.insert(other);
                }
            }
            6 => {
                if live.contains(&name) {
                    fs.remove(&name).unwrap();
                    live.remove(&name);
                }
            }
            _ => fs.dir_sync().unwrap(),
        }
    }
}

fn script_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u8, u8, u8, u8)>> {
    proptest::collection::vec((0u8..=255, 0u8..=255, 0u8..=255, 0u8..=255), 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fully_synced_state_has_exactly_one_crash_image(script in script_strategy(40)) {
        let fs = SimFs::new();
        let mut live = BTreeSet::new();
        apply_script(&fs, &mut live, &script, &["f0", "f1", "f2", "f3"]);
        for name in fs.list().unwrap() {
            fs.fsync(&name).unwrap();
        }
        fs.dir_sync().unwrap();
        let opts = CrashOpts { page_size: 4, torn_pages: true, max_images: 512 };
        let (images, exhausted) = fs.crash_images(&opts);
        prop_assert!(exhausted);
        prop_assert_eq!(images.len(), 1, "synced state must be deterministic");
        let (image, _) = &images[0];
        prop_assert_eq!(image.list().unwrap(), fs.list().unwrap());
        for name in fs.list().unwrap() {
            prop_assert_eq!(image.read(&name).unwrap(), fs.read(&name).unwrap());
        }
    }

    #[test]
    fn a_removed_and_dir_synced_name_never_resurrects(
        before in script_strategy(20),
        after in script_strategy(12),
    ) {
        let fs = SimFs::new();
        let mut live = BTreeSet::new();
        apply_script(&fs, &mut live, &before, &["f0", "f1", "f2", "f3"]);
        if !live.contains("f0") {
            fs.create("f0").unwrap();
        }
        fs.append("f0", b"doomed").unwrap();
        fs.fsync("f0").unwrap();
        fs.dir_sync().unwrap();
        fs.remove("f0").unwrap();
        fs.dir_sync().unwrap();
        live.remove("f0");
        // Whatever happens to *other* names afterwards...
        apply_script(&fs, &mut live, &after, &["f1", "f2", "f3"]);
        let opts = CrashOpts { page_size: 4, torn_pages: true, max_images: 512 };
        let (images, _) = fs.crash_images(&opts);
        prop_assert!(!images.is_empty());
        for (image, desc) in images {
            prop_assert!(
                image.read("f0").unwrap().is_none(),
                "`f0` resurrected in image `{}`", desc
            );
        }
    }
}

proptest! {
    // Each case is itself an exhaustive crash-point sweep, so a few
    // random shapes buy a lot of coverage.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn correct_protocol_recovery_is_idempotent_at_every_crash_point(
        commits in 1u8..=4,
        ck in 0usize..3,
    ) {
        let checkpoint_every = [None, Some(1), Some(2)][ck];
        let opts = CrashOpts { page_size: 8, torn_pages: true, max_images: 100_000 };
        // `explore` runs `recover_and_check` on every image, which
        // replays recovery twice and demands identical views (D4) on
        // top of the durability invariants (D1–D3).
        match proto::explore(ProtocolVariant::Correct, commits, checkpoint_every, opts) {
            Ok(report) => prop_assert!(report.exhausted, "{:?}", report),
            Err(v) => return Err(TestCaseError::fail(v.to_string())),
        }
    }
}
