//! Schedule-exploration models of the store's three core concurrency
//! protocols, each in two variants:
//!
//! * the **buggy pre-fix variant** — the exact bug class a past PR
//!   fixed by hand — which the explorer must *catch* within its
//!   preemption bound (proving the detector works), and
//! * the **fixed variant** — the protocol as `crates/store` ships it —
//!   which must survive *every* schedule in the bound (the regression
//!   guarantee: reintroducing the bug flips the second test).
//!
//! The models use the `wdsparql_analyzer::sched` shims, so every
//! lock/atomic/once op is a scheduling decision the DFS explorer
//! controls. All three protocols fit in 2–3 model threads and are
//! caught with a preemption bound of 2.

use std::sync::Arc;
use wdsparql_analyzer::sched::{spawn, AtomicU64, Explorer, Mutex, OnceLock, Ordering, RwLock};

// ---------------------------------------------------------------------
// Protocol 1 — snapshot-pinned plan+execute (the PR 3 epoch race).
//
// The store plans a BGP and then executes the plan. Pre-fix, planning
// and execution each took their own snapshot; a bulk load between the
// two made the reported epoch (and strategy choice) diverge from the
// data actually scanned. The fix threads ONE snapshot through both
// phases — exactly what the `one-snapshot-per-path` lint now enforces
// statically.
// ---------------------------------------------------------------------

/// Store inner state: (epoch, data version), bumped together under the
/// write lock like `TripleStore::bulk_load`.
type StoreInner = Arc<RwLock<(u64, u64)>>;

fn writer_bumps(store: &StoreInner) {
    let mut g = store.write();
    g.0 += 1; // epoch
    g.1 += 1; // graph contents
}

#[test]
fn plan_execute_two_snapshots_is_caught() {
    let violation = Explorer::new(2)
        .check(|| {
            let store: StoreInner = Arc::new(RwLock::new((0, 0)));
            let s2 = Arc::clone(&store);
            let writer = spawn(move || writer_bumps(&s2));
            // BUGGY: plan on one snapshot, execute on a second one. The
            // store bumps epoch and contents together under the write
            // lock, so any single snapshot has epoch == data — but two
            // snapshots can straddle the bump.
            let plan_epoch = store.read().0;
            let exec_data = store.read().1;
            writer.join();
            assert_eq!(
                plan_epoch, exec_data,
                "plan and execution saw different epochs"
            );
        })
        .expect_err("the two-snapshot plan/execute race must be caught");
    assert!(
        violation.message.contains("different epochs"),
        "{violation}"
    );
}

#[test]
fn plan_execute_shared_snapshot_is_clean() {
    let report = Explorer::new(2)
        .check(|| {
            let store: StoreInner = Arc::new(RwLock::new((0, 0)));
            let s2 = Arc::clone(&store);
            let writer = spawn(move || writer_bumps(&s2));
            // FIXED: one snapshot read pins both plan and execution
            // (`query_with_plan` clones the graph Arc once and derives
            // everything from it), so the pair can never straddle a bump.
            let (plan_epoch, exec_data) = {
                let snap = *store.read();
                (snap.0, snap.1)
            };
            writer.join();
            assert_eq!(plan_epoch, exec_data);
        })
        .expect("the pinned-snapshot protocol has no bad schedule");
    assert!(report.exhausted, "{report:?}");
}

// ---------------------------------------------------------------------
// Protocol 2 — pending-slot stampede dedup (the PR 3 cache-miss
// stampede). Two concurrent misses of the same key must run the
// computation once: the first miss installs an `Arc<OnceLock>` slot in
// a pending map, later misses wait on the slot. The buggy pre-fix
// variant computed straight from "cache says miss".
// ---------------------------------------------------------------------

#[test]
fn cache_miss_stampede_is_caught() {
    let violation = Explorer::new(2)
        .check(|| {
            let cache: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
            let computations = Arc::new(AtomicU64::new(0));
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let computations = Arc::clone(&computations);
                    spawn(move || {
                        // BUGGY: check-then-compute with no in-flight
                        // dedup — both readers can pass the miss check
                        // before either publishes.
                        let miss = cache.lock().is_none();
                        if miss {
                            computations.fetch_add(1, Ordering::SeqCst);
                            *cache.lock() = Some(42);
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            assert_eq!(
                computations.load(Ordering::SeqCst),
                1,
                "stampede: the computation ran more than once"
            );
        })
        .expect_err("the unsynchronized double-compute must be caught");
    assert!(violation.message.contains("stampede"), "{violation}");
}

#[test]
fn cache_miss_pending_slot_dedups_cleanly() {
    let report = Explorer::new(2)
        .check(|| {
            // `ResultCache::get_or_compute` in miniature: the pending
            // map collapses to a single shared slot because the model
            // has one key.
            let pending: Arc<Mutex<Option<Arc<OnceLock<u64>>>>> = Arc::new(Mutex::new(None));
            let computations = Arc::new(AtomicU64::new(0));
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let pending = Arc::clone(&pending);
                    let computations = Arc::clone(&computations);
                    spawn(move || {
                        let (slot, leader) = {
                            let mut p = pending.lock();
                            match &*p {
                                Some(slot) => (Arc::clone(slot), false),
                                None => {
                                    let slot = Arc::new(OnceLock::new());
                                    *p = Some(Arc::clone(&slot));
                                    (slot, true)
                                }
                            }
                        };
                        if leader {
                            computations.fetch_add(1, Ordering::SeqCst);
                            let _ = slot.set(42);
                        } else {
                            assert_eq!(*slot.wait(), 42);
                        }
                    })
                })
                .collect();
            for r in readers {
                r.join();
            }
            assert_eq!(computations.load(Ordering::SeqCst), 1);
        })
        .expect("the pending-slot protocol dedups on every schedule");
    assert!(report.exhausted, "{report:?}");
}

// ---------------------------------------------------------------------
// Protocol 3 — epoch-bump-then-cache-purge with publish re-validation
// (the PR 4 facade epoch-vector invalidation). A writer bumps the
// epoch and purges the cache; a reader that computed on the old graph
// must not publish AFTER the purge, or the stale entry survives
// forever. The fix re-checks the epoch under the cache lock before
// publishing (`still_valid` in `ResultCache::get_or_compute`).
// ---------------------------------------------------------------------

struct FacadeModel {
    /// Current store epoch (the facade's epoch vector, collapsed to one
    /// shard for the model).
    epoch: AtomicU64,
    /// Graph contents the cached value is derived from.
    data: AtomicU64,
    /// The result cache: a value valid for the *current* epoch.
    cache: Mutex<Option<u64>>,
}

fn facade_writer(m: &FacadeModel) {
    m.data.store(2, Ordering::SeqCst);
    m.epoch.fetch_add(1, Ordering::SeqCst);
    // Purge after the bump: readers that re-validate cannot slip a
    // pre-bump value in after this line.
    *m.cache.lock() = None;
}

fn assert_cache_fresh(m: &FacadeModel) {
    if let Some(cached) = *m.cache.lock() {
        assert_eq!(
            cached,
            m.data.load(Ordering::SeqCst),
            "stale cache entry survived the epoch purge"
        );
    }
}

#[test]
fn unconditional_publish_after_purge_is_caught() {
    let violation = Explorer::new(2)
        .check(|| {
            let m = Arc::new(FacadeModel {
                epoch: AtomicU64::new(0),
                data: AtomicU64::new(1),
                cache: Mutex::new(None),
            });
            let m2 = Arc::clone(&m);
            let writer = spawn(move || facade_writer(&m2));
            // BUGGY: compute on the current graph, publish whenever —
            // even after the writer's purge already ran.
            let value = m.data.load(Ordering::SeqCst);
            *m.cache.lock() = Some(value);
            writer.join();
            assert_cache_fresh(&m);
        })
        .expect_err("the stale-publish race must be caught");
    assert!(
        violation.message.contains("stale cache entry"),
        "{violation}"
    );
}

#[test]
fn epoch_revalidated_publish_is_clean() {
    let report = Explorer::new(2)
        .check(|| {
            let m = Arc::new(FacadeModel {
                epoch: AtomicU64::new(0),
                data: AtomicU64::new(1),
                cache: Mutex::new(None),
            });
            let m2 = Arc::clone(&m);
            let writer = spawn(move || facade_writer(&m2));
            // FIXED: pin the epoch before computing; publish only if it
            // still matches, deciding under the cache lock so the
            // writer's bump+purge cannot interleave the check and the
            // insert.
            let pinned = m.epoch.load(Ordering::SeqCst);
            let value = m.data.load(Ordering::SeqCst);
            {
                let mut cache = m.cache.lock();
                if m.epoch.load(Ordering::SeqCst) == pinned {
                    *cache = Some(value);
                }
            }
            writer.join();
            assert_cache_fresh(&m);
        })
        .expect("the still_valid re-check holds on every schedule");
    assert!(report.exhausted, "{report:?}");
}

// ---------------------------------------------------------------------
// Protocol 4 — parallel scatter bulk_load (the PR 4 sharded ingest).
// `ShardedStore::bulk_load` partitions the input, scatters each
// partition to its shard on a worker, and only *publishes* the new
// epoch/counts after joining every worker. The buggy pre-fix shape
// publishes first: a reader that trusts the published counts then
// observes shards the scatter has not reached yet.
// ---------------------------------------------------------------------

struct ScatterModel {
    /// Per-shard triple stores, collapsed to item counts.
    shards: Vec<RwLock<u64>>,
    /// The facade's published per-shard counts, `None` until the load
    /// commits.
    published: Mutex<Option<Vec<u64>>>,
}

/// The reader-side contract: once counts are published, every shard
/// must already hold at least that much data.
fn assert_published_counts_are_backed(m: &ScatterModel) {
    if let Some(counts) = m.published.lock().clone() {
        for (shard, &n) in m.shards.iter().zip(&counts) {
            assert!(
                *shard.read() >= n,
                "bulk_load published counts before its scatter workers finished"
            );
        }
    }
}

fn scatter_model() -> Arc<ScatterModel> {
    Arc::new(ScatterModel {
        shards: vec![RwLock::new(0), RwLock::new(0)],
        published: Mutex::new(None),
    })
}

fn spawn_scatter_workers(m: &Arc<ScatterModel>) -> Vec<wdsparql_analyzer::sched::JoinHandle<()>> {
    (0..2)
        .map(|i| {
            let m = Arc::clone(m);
            spawn(move || *m.shards[i].write() += 1)
        })
        .collect()
}

#[test]
fn scatter_publish_before_join_is_caught() {
    let violation = Explorer::new(2)
        .check(|| {
            let m = scatter_model();
            let m2 = Arc::clone(&m);
            let reader = spawn(move || assert_published_counts_are_backed(&m2));
            let workers = spawn_scatter_workers(&m);
            // BUGGY: commit the load before the scatter barrier — the
            // counts are the *intended* totals, not the loaded ones.
            *m.published.lock() = Some(vec![1, 1]);
            for w in workers {
                w.join();
            }
            reader.join();
            assert_published_counts_are_backed(&m);
        })
        .expect_err("the publish-before-join race must be caught");
    assert!(
        violation.message.contains("before its scatter workers"),
        "{violation}"
    );
}

#[test]
fn scatter_join_then_publish_is_clean() {
    let report = Explorer::new(2)
        .check(|| {
            let m = scatter_model();
            let m2 = Arc::clone(&m);
            let reader = spawn(move || assert_published_counts_are_backed(&m2));
            let workers = spawn_scatter_workers(&m);
            // FIXED: the join is the barrier; publication happens-after
            // every shard write, exactly like `ShardedStore::bulk_load`.
            for w in workers {
                w.join();
            }
            *m.published.lock() = Some(vec![1, 1]);
            reader.join();
            assert_published_counts_are_backed(&m);
        })
        .expect("join-then-publish holds on every schedule");
    assert!(report.exhausted, "{report:?}");
}
