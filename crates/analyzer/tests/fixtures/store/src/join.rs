//! Seeded `budget-checkpoint` violations: a pairwise bind-join stream
//! whose pull and merge loops must stay interruptible under a query
//! budget. Scanned by the lint tests — never compiled.

pub struct FixtureStream {
    budget: Budget,
    pos: usize,
}

impl FixtureStream {
    /// Conforming pull loop: checkpoints the budget every iteration.
    fn pull(&mut self) -> Result<Option<u32>, ExecError> {
        loop {
            self.budget.check()?;
            if self.pos > 3 {
                return Ok(None);
            }
            self.pos += 1;
        }
    }

    /// Unbounded enumeration that never consults the budget.
    fn drain(&mut self) {
        loop { // VIOLATION(budget-checkpoint)
            if self.pos > 3 {
                break;
            }
            self.pos += 1;
        }
    }

    /// A merge loop that also never consults the budget.
    fn merge(&mut self, other: &[u32]) -> usize {
        let mut i = 0;
        while i < other.len() { // VIOLATION(budget-checkpoint)
            i += 1;
        }
        i
    }

    /// Hatched: a planning-time loop bounded by the query size.
    fn order(&self, patterns: &[u32]) -> usize {
        let mut n = 0;
        // analyzer-allow: budget-checkpoint planning-time loop, bounded
        // by the query size rather than the data
        while n < patterns.len() {
            n += 1;
        }
        n
    }
}
