//! Seeded fixture: the cache half of the cross-file lock-order cycle,
//! plus a stale hatch.
//!
//! Never compiled — scanned only. `refill` holds `slots` and calls
//! back into the shard (`self.shard.routing_epoch()` resolves into
//! `shard.rs`, which locks `routing`): the back edge `cache.slots ->
//! shard.routing`, closing the cycle `shard.rs` opens. The cycle is
//! reported here because `cache.slots` is the smallest lock in it.

pub struct FixtureSlots {
    slots: Mutex<Vec<Slot>>,
    shard: FixtureShards,
    generation: u64,
}

impl FixtureSlots {
    /// The entry point `shard.rs` calls while holding `routing`.
    pub fn purge_slots(&self) {
        let mut slots = self.slots.lock();
        slots.clear();
    }

    /// Holds `slots` while re-entering the shard: closes the ABBA
    /// cycle, in the opposite order to `FixtureShards::rebalance`.
    pub fn refill(&self) {
        let mut slots = self.slots.lock();
        let epoch = self.shard.routing_epoch(); // VIOLATION(lock-order-cycle)
        slots.push(Slot::for_epoch(epoch));
    }

    /// Conforming: reads the epoch before taking `slots`.
    pub fn refill_ordered(&self) {
        let epoch = self.shard.routing_epoch();
        let mut slots = self.slots.lock();
        slots.push(Slot::for_epoch(epoch));
    }

    /// The unwrap this hatch once excused became `unwrap_or`; the
    /// silencer left behind must be flagged as stale.
    pub fn generation_or(&self, g: Option<u64>) -> u64 {
        // analyzer-allow: no-unwrap-in-service VIOLATION(unused-hatch)
        g.unwrap_or(self.generation)
    }
}
