//! Seeded `wcoj-buffer-recycle` violations: a leapfrog-style trie whose
//! level buffers must shuttle between the open-level `stack` and the
//! `spare` recycle pool on every exit path. Scanned by the lint tests —
//! never compiled.

pub struct FixtureTrie {
    runs: Vec<u32>,
    stack: Vec<Vec<u32>>,
    spare: Vec<Vec<u32>>,
}

impl FixtureTrie {
    /// Conforming descent: the recycled buffer is installed on the stack.
    fn open(&mut self) {
        let sub = self.spare.pop().unwrap_or_default();
        self.stack.push(std::mem::replace(&mut self.runs, sub));
    }

    /// Conforming ascent: the retired buffer returns to the pool.
    fn up(&mut self) {
        let parent = self.stack.pop().expect("up() without open()");
        self.spare.push(std::mem::replace(&mut self.runs, parent));
    }

    /// Leak: the retired level buffer is dropped, never pooled.
    fn up_leaky(&mut self) {
        let parent = self.stack.pop().unwrap_or_default(); // VIOLATION(wcoj-buffer-recycle)
        self.runs = parent;
    }

    /// Leak: bails out between taking a pooled buffer and installing it.
    fn open_bails(&mut self, empty: bool) {
        let sub = self.spare.pop().unwrap_or_default();
        if empty {
            return; // VIOLATION(wcoj-buffer-recycle)
        }
        self.stack.push(std::mem::replace(&mut self.runs, sub));
    }

    /// Hatched: the popped buffer escapes to the caller by design.
    fn into_parent(&mut self) -> Vec<u32> {
        // analyzer-allow: wcoj-buffer-recycle the caller owns the buffer
        // and recycles it itself
        self.stack.pop().unwrap_or_default()
    }
}
