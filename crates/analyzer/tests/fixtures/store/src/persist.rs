//! Seeded fixture for the `io-ordering` publish-after-sync rule — the
//! static half of the commit protocol the `fsim` crash explorer checks
//! dynamically.
//!
//! Never compiled — scanned only. The durable store does not exist in
//! the workspace yet; this fixture pins the rule's behavior so it is
//! live (and tested) the day `store/src/persist.rs` lands.

pub struct SegmentWriter {
    file: File,
    bytes: Vec<u8>,
}

impl SegmentWriter {
    /// Conforming: data fsync dominates the rename, and the directory
    /// entry is synced after it — the correct commit sequence.
    pub fn publish_segment(&mut self, dir: &Dir) -> io::Result<()> {
        self.file.write_all(&self.bytes)?;
        self.file.sync_all()?;
        dir.rename("seg.tmp", "seg-1")?;
        dir.dir_sync()
    }

    /// The rename-before-fsync crash bug: a crash after the rename
    /// persists can leave the manifest pointing at torn data.
    pub fn publish_unsynced(&mut self, dir: &Dir) -> io::Result<()> {
        self.file.write_all(&self.bytes)?;
        dir.rename("seg.tmp", "seg-1") // VIOLATION(io-ordering)
    }

    /// Hatched: the justification keeps the silencer consulted.
    pub fn publish_batched(&mut self, dir: &Dir) -> io::Result<()> {
        self.file.write_all(&self.bytes)?;
        // analyzer-allow: io-ordering the bulk importer syncs the whole
        // directory tree once at the end of the batch
        dir.rename("seg.tmp", "seg-1")
    }
}
