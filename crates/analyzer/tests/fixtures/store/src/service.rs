//! Seeded violation fixture for the analyzer's integration tests.
//!
//! Never compiled — it lives under `tests/fixtures/`, outside every
//! cargo target, and exists only to be scanned by `wdsparql-analyzer`.
//! Each violation marker names a lint that must flag its line;
//! everything else must stay silent (hatched, in tests, or simply
//! conforming), so the integration test can assert exact findings.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Inner {
    epoch: u64,
}

/// VIOLATION(must-use-snapshot): snapshot type with no `#[must_use]`.
pub struct FixtureSnapshot {
    epoch: u64,
}

#[must_use = "conforming counterpart"]
pub struct FixtureGuard {
    epoch: u64,
}

// analyzer-allow: must-use-snapshot fixture demonstrating the hatch
pub struct HatchedPlannedQuery {
    plan: Vec<usize>,
}

pub struct Service {
    inner: RwLock<Inner>,
    stats: AtomicU64,
}

impl Service {
    pub fn epoch(&self) -> u64 {
        self.inner.read().epoch
    }

    pub fn hot_path(&self, x: Option<u64>) -> u64 {
        x.unwrap() // VIOLATION(no-unwrap-in-service)
    }

    pub fn hatched_path(&self, x: Option<u64>) -> u64 {
        // analyzer-allow: no-unwrap-in-service callers verified is_some
        x.unwrap()
    }

    pub fn counter(&self) -> u64 {
        self.stats.load(Ordering::Relaxed) // VIOLATION(relaxed-ok-comment)
    }

    pub fn justified_counter(&self) -> u64 {
        // relaxed-ok: reporting-only counter
        self.stats.load(Ordering::Relaxed)
    }

    pub fn plan_then_execute(&self) -> u64 {
        let plan = self.read_snapshot();
        let exec = self.read_snapshot(); // VIOLATION(one-snapshot-per-path)
        plan + exec
    }

    pub fn pinned_query(&self) -> u64 {
        let snap = self.read_snapshot();
        snap + snap
    }

    pub fn reentrant_write(&self) -> u64 {
        let mut guard = self.inner.write();
        guard.epoch += 1;
        self.epoch() // VIOLATION(no-lock-reentry)
    }

    pub fn disciplined_write(&self) -> u64 {
        let mut guard = self.inner.write();
        guard.epoch += 1;
        drop(guard);
        self.epoch()
    }

    fn read_snapshot(&self) -> u64 {
        self.inner.read().epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test code is out of every lint's scope: none of these may be
    /// reported even though each would violate outside `#[cfg(test)]`.
    #[test]
    fn unwraps_and_orderings_are_fine_here(s: &Service) {
        let _ = Some(1u64).unwrap();
        let _ = s.stats.load(Ordering::Relaxed);
        let a = s.read_snapshot();
        let b = s.read_snapshot();
        assert_eq!(a, b);
    }
}
