//! Seeded fixture: the shard half of a cross-file lock-order cycle.
//!
//! Never compiled — scanned only. `rebalance` acquires `routing` and
//! then enters the cache (`self.cache.purge_slots()` resolves into
//! `cache.rs`, which locks `slots`): the edge `shard.routing ->
//! cache.slots`. The opposite edge lives in `cache.rs`, which is where
//! the cycle is reported (at the edge out of the lexicographically
//! smallest lock).

pub struct FixtureShards {
    routing: RwLock<RoutingTable>,
    cache: FixtureSlots,
}

impl FixtureShards {
    /// The lock the cache side re-enters through `routing_epoch`.
    pub fn routing_epoch(&self) -> u64 {
        self.routing.read().epoch
    }

    /// Holds `routing` exclusively while purging the cache: the
    /// forward edge of the seeded ABBA cycle.
    pub fn rebalance(&self) {
        let guard = self.routing.write();
        self.cache.purge_slots();
        guard.commit();
    }

    /// Conforming: takes the same locks strictly one at a time.
    pub fn rebalance_ordered(&self) {
        {
            let guard = self.routing.write();
            guard.commit();
        }
        self.cache.purge_slots();
    }
}
