//! End-to-end tests of the lint pass: the library API against the
//! seeded violation fixture, and the `wdsparql-analyzer` binary's exit
//! codes on both the fixture (must fail) and the real workspace (must
//! stay clean — this is the same gate CI runs).

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use wdsparql_analyzer::lints::{self, Config};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crate lives at <ws>/crates/analyzer")
        .to_path_buf()
}

/// The fixture marks every line that must be flagged with a
/// `VIOLATION(<lint>)` comment; the scan must produce exactly those
/// findings — same lint, same line, nothing extra.
#[test]
fn fixture_findings_match_the_seeded_markers() {
    let root = fixture_root();
    let mut expected: BTreeMap<(String, String, u32), ()> = BTreeMap::new();
    for rel in [
        "store/src/service.rs",
        "store/src/wcoj.rs",
        "store/src/join.rs",
        "store/src/shard.rs",
        "store/src/cache.rs",
        "store/src/persist.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).expect("fixture exists");
        for (i, line) in src.lines().enumerate() {
            if let Some(pos) = line.find("VIOLATION(") {
                let rest = &line[pos + "VIOLATION(".len()..];
                let lint = rest[..rest.find(')').expect("marker closes")].to_string();
                // A marker inside a doc comment refers to the item below it.
                let at = if line.trim_start().starts_with("///") {
                    i as u32 + 2
                } else {
                    i as u32 + 1
                };
                expected.insert((rel.to_string(), lint, at), ());
            }
        }
    }
    assert_eq!(
        expected.len(),
        12,
        "one marker per lint, plus the two wcoj-buffer-recycle shapes \
         and the two budget-checkpoint loop shapes"
    );

    let findings = lints::scan_root(&root, &Config::default()).expect("scan succeeds");
    let got: BTreeMap<(String, String, u32), ()> = findings
        .iter()
        .map(|f| ((f.file.clone(), f.lint.to_string(), f.line), ()))
        .collect();
    assert_eq!(
        got, expected,
        "findings must match the seeded markers exactly; raw: {findings:#?}"
    );
}

#[test]
fn binary_fails_on_the_fixture_with_file_line_diagnostics() {
    let out = Command::new(env!("CARGO_BIN_EXE_wdsparql-analyzer"))
        .arg("--check")
        .arg(fixture_root())
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "violations exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("store/src/service.rs:"),
        "diagnostics carry file:line, got:\n{stdout}"
    );
    assert!(stdout.contains("[no-unwrap-in-service]"), "{stdout}");
    assert!(stdout.contains("[one-snapshot-per-path]"), "{stdout}");
    assert!(stdout.contains("[relaxed-ok-comment]"), "{stdout}");
    assert!(stdout.contains("[no-lock-reentry]"), "{stdout}");
    assert!(stdout.contains("[must-use-snapshot]"), "{stdout}");
    assert!(stdout.contains("[wcoj-buffer-recycle]"), "{stdout}");
    assert!(stdout.contains("[budget-checkpoint]"), "{stdout}");
    assert!(stdout.contains("[lock-order-cycle]"), "{stdout}");
    assert!(stdout.contains("[io-ordering]"), "{stdout}");
    assert!(stdout.contains("[unused-hatch] warning:"), "{stdout}");
    assert!(
        stdout.contains("store/src/wcoj.rs:"),
        "recycle findings carry file:line, got:\n{stdout}"
    );
    assert!(
        stdout.contains("store/src/join.rs:"),
        "budget findings carry file:line, got:\n{stdout}"
    );
}

#[test]
fn binary_passes_on_the_workspace() {
    let out = Command::new(env!("CARGO_BIN_EXE_wdsparql-analyzer"))
        .arg("--check")
        .arg(workspace_root())
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the workspace must stay lint-clean, got:\n{stdout}"
    );
}

/// The `io-ordering` scope must cover the real persist module. The
/// config once listed planned single-file paths; now that the durable
/// store exists as a module tree, a scope that silently missed
/// `store/src/persist/*.rs` would let the publish-after-sync rule rot
/// on exactly the code it was written for. Matching is by substring,
/// so one fragment covers both the fixture's `store/src/persist.rs`
/// and every file of the real module. (That the workspace then stays
/// clean *with* those files in scope is what
/// `binary_passes_on_the_workspace` pins — the persist module's
/// rename hatches are consumed there, so a stale scope would resurface
/// as unused-hatch warnings.)
#[test]
fn io_ordering_scope_covers_the_real_persist_module() {
    let cfg = Config::default();
    let ws = workspace_root();
    let persist_dir = ws.join("crates/store/src/persist");
    let entries: Vec<String> = std::fs::read_dir(&persist_dir)
        .expect("the durable store module exists")
        .map(|e| {
            let p = e.expect("dir entry").path();
            p.strip_prefix(&ws)
                .expect("under the workspace")
                .display()
                .to_string()
        })
        .collect();
    assert!(
        entries.iter().any(|p| p.ends_with("mod.rs")),
        "persist module files present, got {entries:?}"
    );
    for rel in &entries {
        assert!(
            cfg.io_files.iter().any(|frag| rel.contains(frag.as_str())),
            "{rel} must be inside the io-ordering scope {:?}",
            cfg.io_files
        );
    }
    // The seeded fixture file must stay in scope under the same
    // fragments, or `fixture_findings_match_the_seeded_markers` would
    // silently stop exercising the io-ordering rule.
    assert!(cfg
        .io_files
        .iter()
        .any(|frag| "store/src/persist.rs".contains(frag.as_str())));
}

#[test]
fn json_report_is_written_and_shaped() {
    let dir = std::env::temp_dir().join("wdsparql-analyzer-test-report");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("report.json");
    let out = Command::new(env!("CARGO_BIN_EXE_wdsparql-analyzer"))
        .arg("--json")
        .arg(&path)
        .arg(fixture_root())
        .output()
        .expect("binary runs");
    // Without --check, violations are informational: exit 0.
    assert_eq!(out.status.code(), Some(0));
    let json = std::fs::read_to_string(&path).expect("report written");
    assert!(json.trim_start().starts_with('{'), "{json}");
    assert!(json.contains("\"schema\": 1"), "{json}");
    assert!(json.contains("\"summary\": "), "{json}");
    assert!(json.contains("\"errors\": 11"), "{json}");
    assert!(json.contains("\"warnings\": 1"), "{json}");
    assert!(
        json.contains("\"lint\": \"no-unwrap-in-service\""),
        "{json}"
    );
    assert!(json.contains("\"severity\": \"error\""), "{json}");
    assert!(json.contains("\"severity\": \"warning\""), "{json}");
    assert!(
        json.contains("\"file\": \"store/src/service.rs\""),
        "{json}"
    );
    assert!(json.contains("\"line\": "), "{json}");
    let _ = std::fs::remove_file(&path);
}

/// `unused-hatch` is advisory by default and fatal under
/// `--strict-hatches`: the same warning-only tree passes plain
/// `--check` and fails the strict one.
#[test]
fn strict_hatches_promotes_warnings_to_failures() {
    let dir = std::env::temp_dir().join("wdsparql-analyzer-test-strict");
    let src_dir = dir.join("store/src");
    std::fs::create_dir_all(&src_dir).expect("temp tree");
    std::fs::write(
        src_dir.join("service.rs"),
        "pub fn fixed(x: Option<u64>) -> u64 {\n\
         \x20   // analyzer-allow: no-unwrap-in-service the caller checked\n\
         \x20   x.unwrap_or(0)\n\
         }\n",
    )
    .expect("fixture written");
    let run = |strict: bool| {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_wdsparql-analyzer"));
        cmd.arg("--check");
        if strict {
            cmd.arg("--strict-hatches");
        }
        cmd.arg(&dir).output().expect("binary runs")
    };
    let lax = run(false);
    assert_eq!(
        lax.status.code(),
        Some(0),
        "warnings alone pass --check:\n{}",
        String::from_utf8_lossy(&lax.stdout)
    );
    let stdout = String::from_utf8_lossy(&lax.stdout);
    assert!(stdout.contains("[unused-hatch] warning:"), "{stdout}");
    let strict = run(true);
    assert_eq!(
        strict.status.code(),
        Some(1),
        "--strict-hatches makes the stale hatch fatal:\n{}",
        String::from_utf8_lossy(&strict.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
