//! The commit-protocol verification matrix (ISSUE 9 acceptance
//! criteria):
//!
//! * the **correct** protocol exhausts every crash point × crash image
//!   clean at the CI bound;
//! * each **seeded-buggy** variant (rename-before-fsync, in-place
//!   manifest overwrite, ack-before-log-sync, missing-dir-sync) is
//!   provably caught, with the violation's crash-point trace asserted;
//! * `fsim` ops double as `sched` yield points, so **concurrent
//!   writers × crash points** explore together: lock-free commits with
//!   atomic segment-id allocation stay clean across the product, and a
//!   split load/store id allocator (the lost-update race) corrupts
//!   durable state in a way recovery checking catches.

use std::sync::{Arc, Mutex as StdMutex};
use wdsparql_analyzer::fsim::proto::{
    self, commit_with_id, format_store, recover_and_check, Oracle, ProtocolVariant,
};
use wdsparql_analyzer::fsim::{CrashOpts, SimFs};
use wdsparql_analyzer::sched::{spawn, AtomicU64, Explorer, Ordering};

fn ci_opts() -> CrashOpts {
    CrashOpts {
        page_size: 8,
        torn_pages: true,
        max_images: 100_000,
    }
}

#[test]
fn correct_protocol_exhausts_every_crash_point_clean() {
    let report = proto::explore(ProtocolVariant::Correct, 3, Some(2), ci_opts())
        .unwrap_or_else(|v| panic!("the specification protocol violated its own invariants:\n{v}"));
    assert!(report.exhausted, "image enumeration must not be capped");
    // format (9 ops) + 3 commits (7 each) + a checkpoint: a real
    // crash-point space, each point fanned out into its images.
    assert!(report.crash_points > 30, "{report:?}");
    assert!(report.images > report.crash_points, "{report:?}");
}

#[test]
fn every_seeded_buggy_variant_is_caught() {
    // Per variant: the invariant classes its bug can surface as.
    let expected: &[(ProtocolVariant, &[&str])] = &[
        (ProtocolVariant::RenameBeforeFsync, &["torn segment", "D1:"]),
        (ProtocolVariant::InPlaceManifestOverwrite, &["manifest"]),
        (ProtocolVariant::AckBeforeLogSync, &["D1:"]),
        (ProtocolVariant::MissingDirSync, &["missing segment", "D1:"]),
    ];
    assert_eq!(expected.len(), ProtocolVariant::BUGGY.len());
    for (variant, patterns) in expected {
        let v = proto::explore(*variant, 2, Some(2), ci_opts()).expect_err(variant.name());
        assert!(
            v.crash_point > 0,
            "{}: a violation needs at least one op to have happened",
            variant.name()
        );
        assert!(
            patterns.iter().any(|p| v.invariant.contains(p)),
            "{}: unexpected invariant `{}` (wanted one of {patterns:?})",
            variant.name(),
            v.invariant
        );
        assert_eq!(
            v.trace.len(),
            v.crash_point,
            "{}: the trace is exactly the ops before the crash",
            variant.name()
        );
        assert!(
            v.trace.iter().any(|op| op.starts_with("rename(")),
            "{}: trace shows the protocol ops: {:?}",
            variant.name(),
            v.trace
        );
    }
}

/// The ack-before-log-sync trace pins the exact window: the last op
/// before the crash is the un-fsynced commit-record append — the ack
/// went out with the commit point still in the page cache.
#[test]
fn ack_before_log_sync_violation_names_the_unsynced_append() {
    let v =
        proto::explore(ProtocolVariant::AckBeforeLogSync, 2, None, ci_opts()).expect_err("caught");
    assert!(v.invariant.contains("D1"), "{}", v.invariant);
    assert!(
        v.trace
            .last()
            .is_some_and(|op| op.starts_with("append(commit.log")),
        "crash window sits between the log append and its fsync: {:?}",
        v.trace
    );
    // The rendered violation is a self-contained repro.
    let rendered = v.to_string();
    assert!(rendered.contains("persisted image:"), "{rendered}");
    assert!(rendered.contains("append(commit.log"), "{rendered}");
}

// ---------------------------------------------------------------------
// Concurrent writers × crash points (sched × fsim composition)
// ---------------------------------------------------------------------

/// Two lock-free writers committing through the correct protocol with
/// atomic seg-id allocation: for a sweep of crash points, every
/// schedule interleaving × crash image must recover clean. Each fs op
/// is a sched yield point, so the DFS explorer owns the interleaving
/// while the crash counter cuts the run at `k` ops past format.
#[test]
fn concurrent_commits_stay_clean_across_schedules_and_crash_points() {
    // 2 writers × 7 commit ops each = crash points 0..=14 past format.
    for k in [0usize, 3, 6, 9, 12, 14] {
        let report = Explorer::new(1)
            .check(move || {
                let fs = Arc::new(SimFs::new());
                format_store(&fs).expect("no crash during format");
                fs.set_crash_at(Some(fs.op_count() + k));
                let oracle = Arc::new(StdMutex::new(Oracle::default()));
                let alloc = Arc::new(AtomicU64::new(1));
                let workers: Vec<_> = [1u8, 2u8]
                    .into_iter()
                    .map(|epoch| {
                        let fs = Arc::clone(&fs);
                        let oracle = Arc::clone(&oracle);
                        let alloc = Arc::clone(&alloc);
                        spawn(move || {
                            let id = alloc.fetch_add(1, Ordering::SeqCst) as u8;
                            oracle.lock().unwrap().started.push(epoch);
                            // Err(Crashed) just means the crash point
                            // hit inside this writer's commit.
                            let _ =
                                commit_with_id(&fs, ProtocolVariant::Correct, epoch, id, || {
                                    oracle.lock().unwrap().acked.push(epoch)
                                });
                        })
                    })
                    .collect();
                for w in workers {
                    w.join();
                }
                let oracle = oracle.lock().unwrap();
                let (images, exhausted) = fs.crash_images(&ci_opts());
                assert!(exhausted);
                for (image, desc) in images {
                    if let Err(e) = recover_and_check(&image, &oracle) {
                        panic!("crash point {k}, image `{desc}`: {e}");
                    }
                }
            })
            .unwrap_or_else(|v| panic!("crash point {k}: {v}"));
        assert!(report.exhausted, "crash point {k}: {report:?}");
    }
}

/// The seeded concurrency bug: a split load/store seg-id allocator.
/// Both writers can read the same id, the second `rename` silently
/// clobbers the first writer's published segment, and recovery finds a
/// committed record whose segment no longer matches (or the model's
/// fs catches the double-create directly) — proving the combined
/// explorer detects races *by their durable consequences*.
#[test]
fn split_id_allocation_race_corrupts_durable_state_and_is_caught() {
    let violation = Explorer::new(1)
        .check(|| {
            let fs = Arc::new(SimFs::new());
            format_store(&fs).expect("no crash armed");
            let oracle = Arc::new(StdMutex::new(Oracle::default()));
            let alloc = Arc::new(AtomicU64::new(1));
            let workers: Vec<_> = [1u8, 2u8]
                .into_iter()
                .map(|epoch| {
                    let fs = Arc::clone(&fs);
                    let oracle = Arc::clone(&oracle);
                    let alloc = Arc::clone(&alloc);
                    spawn(move || {
                        // BUG: load + store instead of fetch_add — the
                        // classic lost update, here on a *name*.
                        let id = alloc.load(Ordering::SeqCst) as u8;
                        alloc.store(u64::from(id) + 1, Ordering::SeqCst);
                        oracle.lock().unwrap().started.push(epoch);
                        let _ = commit_with_id(&fs, ProtocolVariant::Correct, epoch, id, || {
                            oracle.lock().unwrap().acked.push(epoch)
                        });
                    })
                })
                .collect();
            for w in workers {
                w.join();
            }
            let oracle = oracle.lock().unwrap();
            let (images, _) = fs.crash_images(&ci_opts());
            for (image, desc) in images {
                if let Err(e) = recover_and_check(&image, &oracle) {
                    panic!("image `{desc}`: {e}");
                }
            }
        })
        .expect_err("the id-allocation race must be caught");
    assert!(
        violation.message.contains("seg-1"),
        "the clobbered segment is named: {violation}"
    );
}
