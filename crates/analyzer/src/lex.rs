//! A minimal Rust lexer: just enough structure for the invariant lints —
//! identifiers, punctuation, delimiters and literal skipping with
//! correct line numbers, plus the line comments the allow-comment escape
//! hatches live in.
//!
//! Deliberately not a full Rust lexer (no keyword table, no numeric
//! value parsing, no rustc plumbing — the same offline-stand-in spirit
//! as the vendored crates): the lints only match identifier sequences
//! and delimiter structure, so correctly *skipping* strings, chars, raw
//! strings and comments is the whole contract. Known approximations are
//! listed in the crate README.

/// What a token is, as far as the lints care.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword (`fn`, `self`, `unwrap`, ...).
    Ident,
    /// A single punctuation character, except `::` which is one token.
    Punct,
    /// `(`, `[` or `{`.
    Open(Delim),
    /// `)`, `]` or `}`.
    Close(Delim),
    /// Any literal: string, raw string, byte string, char, number.
    Literal,
    /// A lifetime (`'a`) — distinct from char literals.
    Lifetime,
}

/// Delimiter class for [`Kind::Open`]/[`Kind::Close`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    pub kind: Kind,
    pub text: String,
    pub line: u32,
}

/// A comment, keyed by the line it starts on. Line comments carry their
/// text (after `//`, trimmed) — that is where the escape hatches live;
/// block comments are recorded too so a hatch may be written either way.
#[derive(Clone, Debug)]
pub struct Comment {
    pub line: u32,
    pub text: String,
}

/// A lexed file: the token stream plus the comment sidecar.
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Token {
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == Kind::Ident && self.text == text
    }

    pub fn is_punct(&self, text: &str) -> bool {
        self.kind == Kind::Punct && self.text == text
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes
/// become single-character punctuation, unterminated literals run to end
/// of file — a lint pass should report what it saw, not abort the scan.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        b: src.as_bytes(),
        src,
        i: 0,
        line: 1,
        tokens: Vec::new(),
        comments: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    b: &'a [u8],
    src: &'a str,
    i: usize,
    line: u32,
    tokens: Vec<Token>,
    comments: Vec<Comment>,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while self.i < self.b.len() {
            let c = self.b[self.i];
            match c {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                c if c.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                b'(' => self.delim(Kind::Open(Delim::Paren), "("),
                b')' => self.delim(Kind::Close(Delim::Paren), ")"),
                b'[' => self.delim(Kind::Open(Delim::Bracket), "["),
                b']' => self.delim(Kind::Close(Delim::Bracket), "]"),
                b'{' => self.delim(Kind::Open(Delim::Brace), "{"),
                b'}' => self.delim(Kind::Close(Delim::Brace), "}"),
                b':' if self.peek(1) == Some(b':') => {
                    self.push(Kind::Punct, "::");
                    self.i += 2;
                }
                _ => {
                    let text = &self.src[self.i..self.i + 1];
                    self.push(Kind::Punct, text);
                    self.i += 1;
                }
            }
        }
        Lexed {
            tokens: self.tokens,
            comments: self.comments,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: Kind, text: &str) {
        self.tokens.push(Token {
            kind,
            text: text.to_string(),
            line: self.line,
        });
    }

    fn delim(&mut self, kind: Kind, text: &str) {
        self.push(kind, text);
        self.i += 1;
    }

    fn line_comment(&mut self) {
        let start = self.i + 2;
        while self.i < self.b.len() && self.b[self.i] != b'\n' {
            self.i += 1;
        }
        // Strip doc-comment markers too: `/// text` and `//! text` hatch
        // the same way as `// text`.
        let text = self.src[start..self.i]
            .trim_start_matches(['/', '!'])
            .trim();
        self.comments.push(Comment {
            line: self.line,
            text: text.to_string(),
        });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        let start = self.i + 2;
        self.i += 2;
        let mut depth = 1usize;
        let mut end = self.b.len();
        while self.i < self.b.len() {
            if self.b[self.i] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.i += 2;
            } else if self.b[self.i] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.i += 2;
                if depth == 0 {
                    end = self.i - 2;
                    break;
                }
            } else {
                if self.b[self.i] == b'\n' {
                    self.line += 1;
                }
                self.i += 1;
            }
        }
        self.comments.push(Comment {
            line: start_line,
            text: self.src[start..end.max(start)].trim().to_string(),
        });
    }

    /// A `"..."` string with `\` escapes; newlines inside advance the
    /// line counter so following tokens stay correctly located.
    fn string(&mut self) {
        let line = self.line;
        self.i += 1;
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.i += 1;
                    break;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.tokens.push(Token {
            kind: Kind::Literal,
            text: String::new(),
            line,
        });
    }

    /// `r"..."`, `r#"..."#`, `br##"..."##` — no escapes, closes on `"`
    /// followed by the opening number of `#`s.
    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        self.i += hashes + 1; // past the `#`s and the opening quote
        while self.i < self.b.len() {
            if self.b[self.i] == b'\n' {
                self.line += 1;
                self.i += 1;
                continue;
            }
            if self.b[self.i] == b'"' {
                let close = &self.b[self.i + 1..];
                if close.len() >= hashes && close[..hashes].iter().all(|&c| c == b'#') {
                    self.i += 1 + hashes;
                    break;
                }
            }
            self.i += 1;
        }
        self.tokens.push(Token {
            kind: Kind::Literal,
            text: String::new(),
            line,
        });
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: skip the escape, then to the quote.
                self.i += 3; // ', \, escaped char
                while self.i < self.b.len() && self.b[self.i] != b'\'' {
                    self.i += 1;
                }
                self.i += 1;
                self.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            Some(c) if is_ident_start(c) => {
                // `'a'` is a char only when a quote follows immediately;
                // `'abc` (no closing quote after the ident) is a lifetime.
                let mut j = self.i + 1;
                while j < self.b.len() && is_ident_continue(self.b[j]) {
                    j += 1;
                }
                if j == self.i + 2 && self.b.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.tokens.push(Token {
                        kind: Kind::Literal,
                        text: String::new(),
                        line,
                    });
                } else {
                    let text = &self.src[self.i..j];
                    self.push(Kind::Lifetime, text);
                    self.i = j;
                }
            }
            Some(_) => {
                // Punctuation char literal like '(' or ' '.
                self.i += 2;
                if self.peek(0) == Some(b'\'') {
                    self.i += 1;
                }
                self.tokens.push(Token {
                    kind: Kind::Literal,
                    text: String::new(),
                    line,
                });
            }
            None => self.i += 1,
        }
    }

    fn number(&mut self) {
        let line = self.line;
        while self.i < self.b.len() {
            let c = self.b[self.i];
            let fractional_dot = c == b'.' && self.peek(1).is_some_and(|d| d.is_ascii_digit());
            let exponent_sign = (c == b'+' || c == b'-')
                && matches!(self.b.get(self.i - 1), Some(b'e') | Some(b'E'));
            if is_ident_continue(c) || fractional_dot || exponent_sign {
                self.i += 1;
            } else {
                break;
            }
        }
        self.tokens.push(Token {
            kind: Kind::Literal,
            text: String::new(),
            line,
        });
    }

    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
            self.i += 1;
        }
        let text = &self.src[start..self.i];
        match (text, self.peek(0)) {
            ("r" | "br", Some(b'"')) => self.raw_string(0),
            ("r" | "br", Some(b'#')) => {
                let mut hashes = 0;
                while self.peek(hashes) == Some(b'#') {
                    hashes += 1;
                }
                if self.peek(hashes) == Some(b'"') {
                    self.raw_string(hashes);
                } else {
                    // Raw identifier `r#ident`: emit the ident itself.
                    self.i += hashes; // past the `#`
                    let id_start = self.i;
                    while self.i < self.b.len() && is_ident_continue(self.b[self.i]) {
                        self.i += 1;
                    }
                    let id = self.src[id_start..self.i].to_string();
                    self.tokens.push(Token {
                        kind: Kind::Ident,
                        text: id,
                        line: self.line,
                    });
                }
            }
            ("b", Some(b'"')) => self.string_with_line_of_prefix(),
            ("b", Some(b'\'')) => self.char_or_lifetime(),
            _ => self.push(Kind::Ident, text),
        }
    }

    fn string_with_line_of_prefix(&mut self) {
        self.string();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn idents_and_puncts_survive_literals() {
        let src = r####"
            fn f(x: &str) -> u32 {
                let s = "quoted .unwrap() is not code";
                let r = r#"raw "quoted" .expect() either"#;
                let c = 'x';
                let lt: &'static str = s;
                x.parse().unwrap()
            }
        "####;
        let ids = idents(src);
        assert!(ids.contains(&"unwrap".to_string()));
        assert!(ids.contains(&"parse".to_string()));
        // The unwrap/expect inside string literals must not tokenize.
        assert_eq!(ids.iter().filter(|t| *t == "unwrap").count(), 1);
        assert!(!ids.contains(&"expect".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "let a = 1; // relaxed-ok: counters only\n// line two\nlet b = 2;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].line, 1);
        assert_eq!(lexed.comments[0].text, "relaxed-ok: counters only");
        assert_eq!(lexed.comments[1].line, 2);
        // Tokens on line 3 are located after the comment lines.
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).expect("b");
        assert_eq!(b.line, 3);
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("Ordering::Relaxed").tokens;
        assert_eq!(toks.len(), 3);
        assert!(toks[0].is_ident("Ordering"));
        assert!(toks[1].is_punct("::"));
        assert!(toks[2].is_ident("Relaxed"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str, c: char) { let y = 'z'; }").tokens;
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        assert_eq!(lifetimes.len(), 2);
        let lits: Vec<_> = toks.iter().filter(|t| t.kind == Kind::Literal).collect();
        assert_eq!(lits.len(), 1, "'z' is the only literal");
    }

    #[test]
    fn block_comments_nest_and_track_lines() {
        let src = "/* a /* nested */ b\nmore */ fn after() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        let f = lexed
            .tokens
            .iter()
            .find(|t| t.is_ident("after"))
            .expect("after");
        assert_eq!(f.line, 2);
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let toks = lex("let r#type = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("type")));
    }
}
