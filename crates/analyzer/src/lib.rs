//! Project-invariant static analysis and deterministic-schedule race
//! detection for the wdsparql workspace.
//!
//! Two passes, one crate:
//!
//! * [`lints`] — a token-level walker (hand-rolled lexer in [`lex`], no
//!   rustc plumbing) enforcing the store's concurrency invariants:
//!   snapshot discipline, lock-scope hygiene, justified relaxed
//!   orderings, `#[must_use]` on pin-like types, and a service-layer
//!   panic ban. Run it via `cargo run -p wdsparql-analyzer -- --check`.
//! * [`sched`] — loom/shuttle-style cooperative scheduling shims
//!   (`Mutex`, `RwLock`, `AtomicU64`, `OnceLock`, `thread`) plus a DFS
//!   explorer with bounded preemptions, used by the model tests under
//!   `tests/` to exhaustively check the store's epoch/cache protocols.
//! * [`fsim`] — a simulated storage layer whose every op is a crash
//!   point (torn/reordered pages for unsynced data, ordered namespace
//!   journal), an exhaustive crash-image explorer, and the executable
//!   commit-protocol specification ([`fsim::proto`]) the durable-store
//!   PR must implement. Storage ops double as [`sched`] yield points,
//!   so concurrent writers × crash points explore together.
//!
//! The passes are complementary: the lints stop new code from
//! *writing* the bug classes we have already fixed, and the two
//! explorers prove the protocol fixes themselves hold under every
//! interleaving and crash point within the bound.

#![forbid(unsafe_code)]

pub mod fsim;
pub mod lex;
pub mod lints;
pub mod sched;
