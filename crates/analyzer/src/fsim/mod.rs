//! Crash-consistency model checking: a simulated storage layer whose
//! every operation is a potential crash point, and an explorer that
//! replays recovery from every reachable crash image.
//!
//! # The storage model
//!
//! [`SimFs`] is a single-directory in-memory file system with the op
//! vocabulary a commit protocol needs: `create`, `append`/`write_at`,
//! `truncate`, `fsync`, `rename`, `remove`, `dir_sync`, `read`, `list`.
//! Every file keeps two byte images:
//!
//! * **live** — what `read` returns: the page-cache view, updated by
//!   every write immediately;
//! * **durable** — what survives a crash: updated only by `fsync`.
//!
//! Namespace changes (`create`/`rename`/`remove`) take effect in the
//! live directory immediately but are queued in an **ordered journal**
//! until `dir_sync`; a crash persists an arbitrary *prefix* of that
//! journal (metadata is journaled in order, so `rename` is atomic and
//! namespace ops never reorder against each other — but they are
//! independent of data-page persistence, which is the classic
//! data-vs-metadata ordering trap).
//!
//! # Crash images
//!
//! A crash image is built from the durable state plus, independently
//! per dirty **page** (live ≠ durable at [`CrashOpts::page_size`]
//! granularity):
//!
//! * the page persisted (the write reached the platter before the
//!   crash), or did not — *any subset* of dirty pages may persist,
//!   which captures arbitrary write reordering by the device;
//! * optionally ([`CrashOpts::torn_pages`]) the page **tore**: the
//!   first half of the live page landed, the rest still reads back the
//!   old durable bytes — the mid-write crash. (One representative cut
//!   per page; already-durable bytes in the untouched half survive, as
//!   on a real device that tears between sector writes.)
//! * a pending file-length change (append/truncate) persists or not,
//!   independently of the pages.
//!
//! [`CrashExplorer::explore`] first runs the workload uncrashed to
//! count its `N` ops, then for each crash point `k ∈ 0..=N` re-runs it
//! with ops `k..` failing ([`Crashed`]), enumerates every crash image
//! of the aborted state, and calls the model's recovery + invariant
//! check on each. The first violated image is reported with the op
//! trace up to the crash and a description of exactly which pages and
//! namespace ops persisted.
//!
//! Ops also call [`crate::sched::shim::sched_yield`], a no-op outside
//! the schedule explorer; inside [`crate::sched::Explorer::check`] each
//! storage op becomes a scheduling decision, so concurrent writers ×
//! crash points explore together (see `tests/fsim_protocol.rs`).
//!
//! The executable commit-protocol specification built on this lives in
//! [`proto`].

pub mod proto;

use crate::sched::shim::sched_yield;
use crate::sched::LockClean;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Mutex as StdMutex;

/// The injected crash: every op from the configured crash point on
/// fails with this. Model workloads propagate it with `?` and the
/// explorer treats the aborted state as the crash image source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Crashed;

impl fmt::Display for Crashed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("simulated crash")
    }
}

pub type OpResult<T = ()> = Result<T, Crashed>;

#[derive(Clone)]
struct FileData {
    durable: Vec<u8>,
    live: Vec<u8>,
}

#[derive(Clone, Debug)]
enum DirOp {
    Create(String, usize),
    Rename(String, String),
    Remove(String),
}

impl DirOp {
    fn apply(&self, dir: &mut BTreeMap<String, usize>) {
        match self {
            DirOp::Create(name, fid) => {
                dir.insert(name.clone(), *fid);
            }
            DirOp::Rename(old, new) => {
                if let Some(fid) = dir.remove(old) {
                    dir.insert(new.clone(), fid);
                }
            }
            DirOp::Remove(name) => {
                dir.remove(name);
            }
        }
    }
}

struct FsInner {
    /// File arena; directory entries index into it. Unlinked files stay
    /// in the arena (harmless) — only named files are reachable.
    files: Vec<FileData>,
    dir_live: BTreeMap<String, usize>,
    dir_durable: BTreeMap<String, usize>,
    /// Namespace ops since the last `dir_sync`, in order.
    dir_pending: Vec<DirOp>,
    /// Successful ops so far.
    ops: usize,
    /// Ops with index `>= crash_at` fail.
    crash_at: Option<usize>,
    crashed: bool,
    log: Vec<String>,
}

impl FsInner {
    /// The crash gate every op passes through: counts the op, fails it
    /// once the crash point is reached, records the trace line.
    fn gate(&mut self, desc: impl FnOnce() -> String) -> OpResult {
        if self.crashed {
            return Err(Crashed);
        }
        if let Some(k) = self.crash_at {
            if self.ops >= k {
                self.crashed = true;
                return Err(Crashed);
            }
        }
        self.ops += 1;
        self.log.push(desc());
        Ok(())
    }

    fn fid(&self, name: &str) -> usize {
        *self
            .dir_live
            .get(name)
            .unwrap_or_else(|| panic!("fsim: no such file `{name}` (model bug, not a crash)"))
    }
}

/// The simulated single-directory file system. All methods take `&self`
/// (internal locking), so one instance can be shared by the concurrent
/// writers of a [`crate::sched::Explorer`] model.
pub struct SimFs {
    inner: StdMutex<FsInner>,
}

impl Default for SimFs {
    fn default() -> SimFs {
        SimFs::new()
    }
}

impl SimFs {
    pub fn new() -> SimFs {
        SimFs {
            inner: StdMutex::new(FsInner {
                files: Vec::new(),
                dir_live: BTreeMap::new(),
                dir_durable: BTreeMap::new(),
                dir_pending: Vec::new(),
                ops: 0,
                crash_at: None,
                crashed: false,
                log: Vec::new(),
            }),
        }
    }

    /// Arms (or disarms, with `None`) the crash: ops with absolute
    /// index `>= k` fail. Also re-arms a previously crashed instance.
    pub fn set_crash_at(&self, k: Option<usize>) {
        let mut inner = self.inner.lock_clean();
        inner.crash_at = k;
        inner.crashed = false;
    }

    /// Successful ops so far (the crash-point space is `0..=op_count`).
    pub fn op_count(&self) -> usize {
        self.inner.lock_clean().ops
    }

    /// The trace of every successful op, in order.
    pub fn op_log(&self) -> Vec<String> {
        self.inner.lock_clean().log.clone()
    }

    /// Creates an empty file. Panics if the name is taken (model bug).
    pub fn create(&self, name: &str) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("create({name})"))?;
        assert!(
            !inner.dir_live.contains_key(name),
            "fsim: create of existing `{name}`"
        );
        inner.files.push(FileData {
            durable: Vec::new(),
            live: Vec::new(),
        });
        let fid = inner.files.len() - 1;
        inner.dir_live.insert(name.to_string(), fid);
        inner.dir_pending.push(DirOp::Create(name.to_string(), fid));
        Ok(())
    }

    pub fn append(&self, name: &str, data: &[u8]) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("append({name}, {}B)", data.len()))?;
        let fid = inner.fid(name);
        inner.files[fid].live.extend_from_slice(data);
        Ok(())
    }

    /// Overwrites bytes at `offset`, extending the file if needed.
    pub fn write_at(&self, name: &str, offset: usize, data: &[u8]) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("write_at({name}, {offset}, {}B)", data.len()))?;
        let fid = inner.fid(name);
        let live = &mut inner.files[fid].live;
        if live.len() < offset + data.len() {
            live.resize(offset + data.len(), 0);
        }
        live[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    pub fn truncate(&self, name: &str, len: usize) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("truncate({name}, {len})"))?;
        let fid = inner.fid(name);
        let live = &mut inner.files[fid].live;
        if live.len() > len {
            live.truncate(len);
        } else {
            live.resize(len, 0);
        }
        Ok(())
    }

    /// Makes the file's live bytes durable (content only — the *name*
    /// needs `dir_sync`, exactly the POSIX trap).
    pub fn fsync(&self, name: &str) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("fsync({name})"))?;
        let fid = inner.fid(name);
        inner.files[fid].durable = inner.files[fid].live.clone();
        Ok(())
    }

    /// Atomically replaces `new` with `old`'s file (live immediately;
    /// durable once the journal prefix containing it persists).
    pub fn rename(&self, old: &str, new: &str) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("rename({old} -> {new})"))?;
        let fid = inner.fid(old);
        inner.dir_live.remove(old);
        inner.dir_live.insert(new.to_string(), fid);
        inner
            .dir_pending
            .push(DirOp::Rename(old.to_string(), new.to_string()));
        Ok(())
    }

    pub fn remove(&self, name: &str) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("remove({name})"))?;
        inner.fid(name);
        inner.dir_live.remove(name);
        inner.dir_pending.push(DirOp::Remove(name.to_string()));
        Ok(())
    }

    /// Persists the whole namespace journal, in order.
    pub fn dir_sync(&self) -> OpResult {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| "dir_sync()".to_string())?;
        let pending = std::mem::take(&mut inner.dir_pending);
        for op in &pending {
            let mut dir = std::mem::take(&mut inner.dir_durable);
            op.apply(&mut dir);
            inner.dir_durable = dir;
        }
        Ok(())
    }

    /// The live view of a file, `None` if the name does not exist.
    pub fn read(&self, name: &str) -> OpResult<Option<Vec<u8>>> {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| format!("read({name})"))?;
        Ok(inner
            .dir_live
            .get(name)
            .map(|&fid| inner.files[fid].live.clone()))
    }

    /// Live directory listing, sorted.
    pub fn list(&self) -> OpResult<Vec<String>> {
        sched_yield();
        let mut inner = self.inner.lock_clean();
        inner.gate(|| "list()".to_string())?;
        Ok(inner.dir_live.keys().cloned().collect())
    }

    /// Every state a crash *now* could leave on disk, as fresh
    /// [`SimFs`] instances (durable == live, empty journal, no crash
    /// armed) plus a human description of what persisted. The second
    /// component is `false` when enumeration was capped at
    /// [`CrashOpts::max_images`].
    pub fn crash_images(&self, opts: &CrashOpts) -> (Vec<(SimFs, String)>, bool) {
        assert!(opts.page_size >= 2, "torn pages need page_size >= 2");
        let inner = self.inner.lock_clean();
        // Dirty items: per file, the pages where live ≠ durable and a
        // pending length change; plus the namespace journal prefix.
        struct Dirty {
            fid: usize,
            pages: Vec<usize>,
            size_differs: bool,
        }
        let ps = opts.page_size;
        // A file can appear in *some* crash image only if the durable
        // directory points at it or a pending `create` could. Orphans
        // (removed, or clobbered by rename) are unreachable in every
        // image, so their dirty pages must not multiply the space.
        let mut reachable: BTreeSet<usize> = inner.dir_durable.values().copied().collect();
        for op in &inner.dir_pending {
            if let DirOp::Create(_, fid) = op {
                reachable.insert(*fid);
            }
        }
        let mut dirty: Vec<Dirty> = Vec::new();
        for (fid, f) in inner.files.iter().enumerate() {
            if !reachable.contains(&fid) {
                continue;
            }
            let n_pages = f.durable.len().max(f.live.len()).div_ceil(ps);
            let pages: Vec<usize> = (0..n_pages)
                .filter(|&p| page_of(&f.durable, p, ps) != page_of(&f.live, p, ps))
                .collect();
            let size_differs = f.durable.len() != f.live.len();
            if !pages.is_empty() || size_differs {
                dirty.push(Dirty {
                    fid,
                    pages,
                    size_differs,
                });
            }
        }
        // Mixed-radix digits: journal prefix, then per file each dirty
        // page (keep / live / torn) and the size bit (old / new).
        let page_radix = if opts.torn_pages { 3 } else { 2 };
        let mut radices: Vec<usize> = vec![inner.dir_pending.len() + 1];
        for d in &dirty {
            radices.extend(std::iter::repeat_n(page_radix, d.pages.len()));
            if d.size_differs {
                radices.push(2);
            }
        }
        let total: u128 = radices.iter().map(|&r| r as u128).product();
        let count = total.min(opts.max_images as u128) as usize;
        let exhausted = total <= opts.max_images as u128;

        // Reverse name lookup for descriptions.
        let name_of = |fid: usize| -> String {
            inner
                .dir_live
                .iter()
                .chain(inner.dir_durable.iter())
                .find(|(_, &f)| f == fid)
                .map(|(n, _)| n.clone())
                .unwrap_or_else(|| format!("#{fid}"))
        };

        let mut out = Vec::with_capacity(count);
        for mut idx in 0..count {
            let mut digits = Vec::with_capacity(radices.len());
            for &r in &radices {
                digits.push(idx % r);
                idx /= r;
            }
            let mut di = digits.into_iter();
            let prefix = di.next().expect("journal digit first");

            let mut files = inner.files.clone();
            let mut desc = format!("dir={prefix}/{}", inner.dir_pending.len());
            for d in &dirty {
                let f = &inner.files[d.fid];
                let n_pages = f.durable.len().max(f.live.len()).div_ceil(ps);
                let mut bytes = Vec::with_capacity(n_pages * ps);
                let mut choices: BTreeMap<usize, usize> = BTreeMap::new();
                for &p in &d.pages {
                    choices.insert(p, di.next().expect("one digit per dirty page"));
                }
                for p in 0..n_pages {
                    match choices.get(&p) {
                        None | Some(0) => bytes.extend(page_of(&f.durable, p, ps)),
                        Some(1) => bytes.extend(page_of(&f.live, p, ps)),
                        Some(_) => {
                            let live = page_of(&f.live, p, ps);
                            let old = page_of(&f.durable, p, ps);
                            bytes.extend(&live[..ps / 2]);
                            bytes.extend(&old[ps / 2..]);
                        }
                    }
                }
                let len = if d.size_differs && di.next().expect("size digit") == 1 {
                    f.live.len()
                } else {
                    f.durable.len()
                };
                bytes.truncate(len);
                desc.push_str(&format!(" {}[", name_of(d.fid)));
                for (i, &p) in d.pages.iter().enumerate() {
                    if i > 0 {
                        desc.push(',');
                    }
                    desc.push_str(&format!("p{p}={}", ["keep", "live", "torn"][choices[&p]]));
                }
                if d.size_differs {
                    desc.push_str(&format!(
                        "{}len={len}",
                        if d.pages.is_empty() { "" } else { "," }
                    ));
                }
                desc.push(']');
                files[d.fid] = FileData {
                    durable: bytes.clone(),
                    live: bytes,
                };
            }
            // Files with no dirty items persist as-is (durable view).
            for (fid, f) in files.iter_mut().enumerate() {
                if !dirty.iter().any(|d| d.fid == fid) {
                    f.live.clone_from(&f.durable);
                }
            }
            let mut dir = inner.dir_durable.clone();
            for op in &inner.dir_pending[..prefix] {
                op.apply(&mut dir);
            }
            out.push((
                SimFs {
                    inner: StdMutex::new(FsInner {
                        files,
                        dir_live: dir.clone(),
                        dir_durable: dir,
                        dir_pending: Vec::new(),
                        ops: 0,
                        crash_at: None,
                        crashed: false,
                        log: Vec::new(),
                    }),
                },
                desc,
            ));
        }
        (out, exhausted)
    }

    /// `(name, bytes)` for every reachable file — test/debug helper for
    /// comparing recovered states.
    pub fn dump(&self) -> Vec<(String, Vec<u8>)> {
        let inner = self.inner.lock_clean();
        inner
            .dir_live
            .iter()
            .map(|(n, &fid)| (n.clone(), inner.files[fid].live.clone()))
            .collect()
    }
}

/// The live page `p` of `buf`, zero-padded to `ps` bytes (holes past
/// the end of the file read back as zeros).
fn page_of(buf: &[u8], p: usize, ps: usize) -> Vec<u8> {
    let start = p * ps;
    let mut out = vec![0u8; ps];
    if start < buf.len() {
        let end = (start + ps).min(buf.len());
        out[..end - start].copy_from_slice(&buf[start..end]);
    }
    out
}

/// Crash-image enumeration parameters.
#[derive(Clone, Copy, Debug)]
pub struct CrashOpts {
    /// Write-persistence granularity; smaller = more reordering states.
    pub page_size: usize,
    /// Explore mid-write (half-persisted) pages.
    pub torn_pages: bool,
    /// Per-crash-point image cap; exceeding it clears `exhausted`.
    pub max_images: usize,
}

impl Default for CrashOpts {
    fn default() -> CrashOpts {
        CrashOpts {
            page_size: 8,
            torn_pages: true,
            max_images: 4096,
        }
    }
}

/// What an exhausted exploration covered.
#[derive(Clone, Copy, Debug)]
pub struct FsimReport {
    /// Crash points explored (`0..=N` for an `N`-op workload).
    pub crash_points: usize,
    /// Total crash images recovered and checked.
    pub images: usize,
    /// False when any crash point hit [`CrashOpts::max_images`].
    pub exhausted: bool,
}

/// A recovery invariant that failed on a specific crash image.
#[derive(Clone, Debug)]
pub struct FsimViolation {
    /// The crash point: ops `0..crash_point` completed.
    pub crash_point: usize,
    /// Which pages / journal prefix persisted in the failing image.
    pub image: String,
    /// The invariant-check failure message.
    pub invariant: String,
    /// The op trace up to the crash.
    pub trace: Vec<String>,
}

impl fmt::Display for FsimViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "crash-consistency violation after op {}: {}",
            self.crash_point, self.invariant
        )?;
        writeln!(f, "  persisted image: {}", self.image)?;
        writeln!(f, "  ops before the crash:")?;
        for (i, op) in self.trace.iter().enumerate() {
            writeln!(f, "    {i:3}  {op}")?;
        }
        Ok(())
    }
}

/// Exhaustive crash-point × crash-image exploration of a storage
/// workload. See the module docs for the state model.
#[derive(Clone, Copy, Debug, Default)]
pub struct CrashExplorer {
    pub opts: CrashOpts,
}

impl CrashExplorer {
    /// Runs `workload` once uncrashed to size the crash-point space,
    /// then for every crash point and every crash image runs
    /// `recover_check` (the model's recovery + invariant check, `Err`
    /// = violation) against the oracle state `init` + `workload` built
    /// up to the crash.
    pub fn explore<O>(
        &self,
        init: impl Fn() -> O,
        workload: impl Fn(&SimFs, &mut O) -> OpResult,
        recover_check: impl Fn(&SimFs, &O) -> Result<(), String>,
    ) -> Result<FsimReport, Box<FsimViolation>> {
        let fs = SimFs::new();
        let mut oracle = init();
        workload(&fs, &mut oracle).expect("fsim workload must complete when no crash is injected");
        let total_ops = fs.op_count();

        let mut images_checked = 0usize;
        let mut exhausted = true;
        for k in 0..=total_ops {
            let fs = SimFs::new();
            fs.set_crash_at(Some(k));
            let mut oracle = init();
            // Err(Crashed) is the expected outcome for k < total_ops.
            let _ = workload(&fs, &mut oracle);
            let (images, point_exhausted) = fs.crash_images(&self.opts);
            exhausted &= point_exhausted;
            for (image, desc) in images {
                images_checked += 1;
                if let Err(invariant) = recover_check(&image, &oracle) {
                    return Err(Box::new(FsimViolation {
                        crash_point: k,
                        image: desc,
                        invariant,
                        trace: fs.op_log(),
                    }));
                }
            }
        }
        Ok(FsimReport {
            crash_points: total_ops + 1,
            images: images_checked,
            exhausted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(ps: usize, torn: bool) -> CrashOpts {
        CrashOpts {
            page_size: ps,
            torn_pages: torn,
            max_images: 100_000,
        }
    }

    fn contents(images: &[(SimFs, String)], name: &str) -> Vec<Option<Vec<u8>>> {
        images
            .iter()
            .map(|(fs, _)| fs.read(name).expect("image fs has no crash armed"))
            .collect()
    }

    #[test]
    fn unsynced_writes_can_persist_in_any_order() {
        let fs = SimFs::new();
        fs.create("f").unwrap();
        fs.dir_sync().unwrap();
        fs.append("f", b"AAAABBBB").unwrap();
        let (images, exhausted) = fs.crash_images(&opts(4, false));
        assert!(exhausted);
        // Two dirty pages + the length change: 8 combinations.
        assert_eq!(images.len(), 8);
        let got = contents(&images, "f");
        // Length not persisted: the file is empty whatever the pages did.
        assert!(got.contains(&Some(Vec::new())));
        // Reordering witness: the *second* write persisted, the first
        // did not — the tail page landed, the head reads back as zeros.
        assert!(got.contains(&Some(b"\0\0\0\0BBBB".to_vec())));
        // First page only.
        assert!(got.contains(&Some(b"AAAA\0\0\0\0".to_vec())));
        // Everything landed.
        assert!(got.contains(&Some(b"AAAABBBB".to_vec())));
    }

    #[test]
    fn torn_pages_expose_half_written_state() {
        let fs = SimFs::new();
        fs.create("f").unwrap();
        fs.dir_sync().unwrap();
        fs.append("f", b"ABCD").unwrap();
        let (images, _) = fs.crash_images(&opts(4, true));
        let got = contents(&images, "f");
        // One dirty page with keep/live/torn × length old/new = 6.
        assert_eq!(images.len(), 6);
        // The torn image: the first half of the write landed, the rest
        // still reads back the old (hole) bytes.
        assert!(got.contains(&Some(b"AB\0\0".to_vec())), "{got:?}");
    }

    #[test]
    fn fsync_and_dir_sync_collapse_to_one_image() {
        let fs = SimFs::new();
        fs.create("f").unwrap();
        fs.append("f", b"data!").unwrap();
        fs.fsync("f").unwrap();
        fs.dir_sync().unwrap();
        let (images, exhausted) = fs.crash_images(&opts(4, true));
        assert!(exhausted);
        assert_eq!(images.len(), 1, "fully synced state is deterministic");
        assert_eq!(images[0].0.read("f").unwrap(), Some(b"data!".to_vec()));
    }

    #[test]
    fn rename_is_atomic_but_durable_only_after_dir_sync() {
        let fs = SimFs::new();
        fs.create("a").unwrap();
        fs.append("a", b"x").unwrap();
        fs.fsync("a").unwrap();
        fs.dir_sync().unwrap();
        fs.rename("a", "b").unwrap();
        let (images, _) = fs.crash_images(&opts(4, true));
        assert_eq!(images.len(), 2, "journal prefix 0 or 1");
        for (img, desc) in &images {
            let a = img.read("a").unwrap();
            let b = img.read("b").unwrap();
            assert!(
                a.is_some() != b.is_some(),
                "exactly one name exists ({desc}): a={a:?} b={b:?}"
            );
        }
        fs.dir_sync().unwrap();
        let (images, _) = fs.crash_images(&opts(4, true));
        assert_eq!(images.len(), 1);
        assert_eq!(images[0].0.read("b").unwrap(), Some(b"x".to_vec()));
    }

    #[test]
    fn namespace_journal_persists_in_order() {
        let fs = SimFs::new();
        fs.create("a").unwrap();
        fs.create("b").unwrap();
        let (images, _) = fs.crash_images(&opts(4, true));
        // Prefix semantics: `b` can never exist without `a`.
        assert_eq!(images.len(), 3);
        for (img, desc) in &images {
            if img.read("b").unwrap().is_some() {
                assert!(img.read("a").unwrap().is_some(), "{desc}");
            }
        }
    }

    #[test]
    fn crash_at_fails_every_op_from_that_point() {
        let fs = SimFs::new();
        fs.set_crash_at(Some(2));
        fs.create("a").unwrap();
        fs.append("a", b"x").unwrap();
        assert_eq!(fs.fsync("a"), Err(Crashed));
        assert_eq!(fs.dir_sync(), Err(Crashed), "stays crashed");
        assert_eq!(fs.op_count(), 2);
        assert_eq!(fs.op_log(), vec!["create(a)", "append(a, 1B)"]);
    }

    #[test]
    fn truncate_shrinks_live_but_durable_needs_fsync() {
        let fs = SimFs::new();
        fs.create("f").unwrap();
        fs.append("f", b"12345678").unwrap();
        fs.fsync("f").unwrap();
        fs.dir_sync().unwrap();
        fs.truncate("f", 4).unwrap();
        let (images, _) = fs.crash_images(&opts(4, true));
        let got = contents(&images, "f");
        assert!(got.contains(&Some(b"12345678".to_vec())), "old length");
        assert!(got.contains(&Some(b"1234".to_vec())), "new length");
    }

    #[test]
    fn explorer_catches_an_ack_before_sync_and_passes_the_fix() {
        // Toy protocol: write a flag file, then "ack". Buggy variant
        // acks before fsync — some crash image has the ack recorded in
        // the oracle but no durable flag.
        let run = |sync_first: bool| {
            CrashExplorer {
                opts: opts(4, true),
            }
            .explore(
                || false,
                move |fs, acked: &mut bool| {
                    fs.create("flag")?;
                    fs.append("flag", b"ok")?;
                    if sync_first {
                        fs.fsync("flag")?;
                        fs.dir_sync()?;
                        *acked = true;
                    } else {
                        *acked = true;
                        fs.fsync("flag")?;
                        fs.dir_sync()?;
                    }
                    Ok(())
                },
                |img, acked| {
                    if *acked
                        && img.read("flag").map_err(|e| e.to_string())? != Some(b"ok".to_vec())
                    {
                        return Err("acked flag is not durable".to_string());
                    }
                    Ok(())
                },
            )
        };
        let report = run(true).expect("correct ordering exhausts clean");
        assert!(report.exhausted);
        assert!(report.crash_points >= 5);
        let violation = run(false).expect_err("ack before sync is caught");
        assert!(violation.invariant.contains("not durable"));
        assert!(!violation.trace.is_empty());
        let rendered = violation.to_string();
        assert!(
            rendered.contains("crash-consistency violation"),
            "{rendered}"
        );
    }
}
