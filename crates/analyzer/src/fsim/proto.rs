//! The durable-storage commit protocol as an executable model — the
//! specification ROADMAP open item 1 must implement, verified here
//! against every crash point *before* the real persistence code
//! exists.
//!
//! # On-disk layout (mirrors the store's base + delta segments)
//!
//! * `seg-<id>` — immutable segment files: a checksummed frame around
//!   an epoch's payload (stand-in for a serialized delta segment).
//! * `commit.log` — append-only log of fixed-size checksummed records
//!   `(epoch, seg id, payload checksum)`; a record is the commit point.
//! * `manifest` — checksummed list of checkpointed epochs; replaced
//!   atomically (write `manifest.tmp`, `fsync`, `rename`, `dir_sync`),
//!   after which the log is truncated.
//!
//! # The correct commit sequence ([`ProtocolVariant::Correct`])
//!
//! ```text
//! create seg-<id>.tmp → append frame → fsync          (data durable)
//! rename seg-<id>.tmp → seg-<id> → dir_sync           (name durable)
//! append commit.log record → fsync commit.log         (commit point)
//! ack                                                 (caller resumes)
//! ```
//!
//! # Recovery ([`recover`])
//!
//! 1. delete orphan `*.tmp` files;
//! 2. parse the manifest (absent + absent log = empty store; torn =
//!    violation) and verify every listed segment parses;
//! 3. replay `commit.log`: truncate at the first torn/short record,
//!    verify each surviving record's segment against the recorded
//!    payload checksum, skip epochs already in the manifest;
//! 4. quarantine (remove) segment files nothing references, then
//!    `dir_sync` the repairs.
//!
//! # Invariants (checked at every crash point, see the analyzer README)
//!
//! * **D1 — acked durability**: every acked epoch is recovered with
//!   its exact payload.
//! * **D2 — interrupted-load atomicity**: recovery never surfaces an
//!   epoch that was not started, nor a partial payload; an interrupted
//!   `bulk_load` is entirely invisible (a durable-but-unacked commit
//!   record may surface its epoch, but only fully intact).
//! * **D3 — reference integrity**: manifest and log never point at a
//!   missing or torn segment; recovery itself never errors.
//! * **D4 — idempotence**: running recovery twice yields the same
//!   state as running it once.
//!
//! The seeded buggy variants each break one step and are provably
//! caught (`tests/fsim_protocol.rs`); the correct protocol exhausts
//! every crash point clean.

use super::{CrashExplorer, CrashOpts, FsimReport, FsimViolation, OpResult, SimFs};
use std::collections::BTreeMap;

const LOG: &str = "commit.log";
const MANIFEST: &str = "manifest";
const LOG_MAGIC: u8 = 0xC7;
const MANIFEST_MAGIC: u8 = 0xAF;
/// Fixed log record size: magic, epoch, seg id, payload len, payload
/// checksum, record checksum.
const RECORD_LEN: usize = 6;

/// The commit-sequence variants under test: one correct, four each
/// breaking a single ordering step of the protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtocolVariant {
    /// The specification sequence (module docs) — exhausts clean.
    Correct,
    /// Publishes the segment name before its data is durable (the
    /// `fsync` moves after the ack): a crash can leave the log pointing
    /// at a torn segment whose epoch was acked.
    RenameBeforeFsync,
    /// Rewrites the manifest in place (truncate + write) instead of
    /// via tmp + rename: a crash mid-rewrite leaves it unparseable.
    InPlaceManifestOverwrite,
    /// Acks before the commit-log fsync: a crash in between loses an
    /// acked epoch.
    AckBeforeLogSync,
    /// Skips the `dir_sync` after publishing the segment name: the
    /// rename may not be durable although the logged commit is.
    MissingDirSync,
}

impl ProtocolVariant {
    /// Every seeded-buggy variant, for test matrices.
    pub const BUGGY: [ProtocolVariant; 4] = [
        ProtocolVariant::RenameBeforeFsync,
        ProtocolVariant::InPlaceManifestOverwrite,
        ProtocolVariant::AckBeforeLogSync,
        ProtocolVariant::MissingDirSync,
    ];

    pub fn name(self) -> &'static str {
        match self {
            ProtocolVariant::Correct => "correct",
            ProtocolVariant::RenameBeforeFsync => "rename-before-fsync",
            ProtocolVariant::InPlaceManifestOverwrite => "in-place-manifest-overwrite",
            ProtocolVariant::AckBeforeLogSync => "ack-before-log-sync",
            ProtocolVariant::MissingDirSync => "missing-dir-sync",
        }
    }
}

/// What the writer side believes happened — the ground truth recovery
/// is checked against.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    /// Epochs whose `bulk_load` began.
    pub started: Vec<u8>,
    /// Epochs whose commit was acknowledged to the caller.
    pub acked: Vec<u8>,
}

/// The store state recovery reconstructs: epoch → payload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveredView {
    pub payloads: BTreeMap<u8, Vec<u8>>,
}

/// The deterministic payload each epoch's segment carries; invariant
/// checks compare recovered bytes against this.
pub fn payload_for(epoch: u8) -> Vec<u8> {
    (0..(epoch % 5) + 3)
        .map(|i| epoch.wrapping_mul(37).wrapping_add(i))
        .collect()
}

/// Order-sensitive rolling checksum (one byte — collisions only make
/// the checker miss, never false-alarm, and the matrix tests prove it
/// catches every seeded bug).
fn checksum(bytes: &[u8]) -> u8 {
    bytes
        .iter()
        .fold(0u8, |a, &b| a.wrapping_mul(31).wrapping_add(b))
}

/// Secondary checksum so an all-zero frame never validates.
fn checksum2(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0x5Au8, |a, &b| a.rotate_left(3) ^ b)
}

fn seg_name(id: u8) -> String {
    format!("seg-{id}")
}

// --- segment frames -------------------------------------------------

fn frame_segment(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 3);
    out.push(payload.len() as u8);
    out.extend_from_slice(payload);
    out.push(checksum(payload));
    out.push(checksum2(payload));
    out
}

fn parse_segment(bytes: &[u8]) -> Result<Vec<u8>, String> {
    if bytes.len() < 3 {
        return Err(format!("segment too short ({}B)", bytes.len()));
    }
    let plen = bytes[0] as usize;
    if bytes.len() != plen + 3 {
        return Err(format!(
            "segment length {} does not match framed payload length {plen}",
            bytes.len()
        ));
    }
    let payload = &bytes[1..1 + plen];
    if bytes[1 + plen] != checksum(payload) || bytes[2 + plen] != checksum2(payload) {
        return Err("segment checksum mismatch".to_string());
    }
    Ok(payload.to_vec())
}

// --- commit log -----------------------------------------------------

struct LogRecord {
    epoch: u8,
    seg_id: u8,
    plen: u8,
    pck: u8,
}

fn frame_record(epoch: u8, seg_id: u8, payload: &[u8]) -> Vec<u8> {
    let mut rec = vec![
        LOG_MAGIC,
        epoch,
        seg_id,
        payload.len() as u8,
        checksum(payload),
    ];
    rec.push(checksum(&rec));
    rec
}

/// Valid records and the byte length they cover; everything after the
/// first short/torn record is an unreachable tail.
fn parse_log(bytes: &[u8]) -> (Vec<LogRecord>, usize) {
    let mut records = Vec::new();
    let mut at = 0;
    while at + RECORD_LEN <= bytes.len() {
        let rec = &bytes[at..at + RECORD_LEN];
        if rec[0] != LOG_MAGIC || rec[RECORD_LEN - 1] != checksum(&rec[..RECORD_LEN - 1]) {
            break;
        }
        records.push(LogRecord {
            epoch: rec[1],
            seg_id: rec[2],
            plen: rec[3],
            pck: rec[4],
        });
        at += RECORD_LEN;
    }
    (records, at)
}

// --- manifest -------------------------------------------------------

fn frame_manifest(epochs: &[u8]) -> Vec<u8> {
    let mut out = vec![MANIFEST_MAGIC, epochs.len() as u8];
    out.extend_from_slice(epochs);
    let (ck1, ck2) = (checksum(&out), checksum2(&out));
    out.push(ck1);
    out.push(ck2);
    out
}

fn parse_manifest(bytes: &[u8]) -> Result<Vec<u8>, String> {
    if bytes.len() < 4 {
        return Err(format!("manifest too short ({}B)", bytes.len()));
    }
    if bytes[0] != MANIFEST_MAGIC {
        return Err("manifest magic mismatch".to_string());
    }
    let n = bytes[1] as usize;
    if bytes.len() != n + 4 {
        return Err(format!(
            "manifest length {} does not match entry count {n}",
            bytes.len()
        ));
    }
    let body = &bytes[..n + 2];
    if bytes[n + 2] != checksum(body) || bytes[n + 3] != checksum2(body) {
        return Err("manifest checksum mismatch".to_string());
    }
    Ok(bytes[2..2 + n].to_vec())
}

// --- the protocol ---------------------------------------------------

/// Initializes an empty store: an empty manifest published atomically,
/// then the commit log.
pub fn format_store(fs: &SimFs) -> OpResult {
    let tmp = format!("{MANIFEST}.tmp");
    fs.create(&tmp)?;
    fs.append(&tmp, &frame_manifest(&[]))?;
    fs.fsync(&tmp)?;
    fs.rename(&tmp, MANIFEST)?;
    fs.dir_sync()?;
    fs.create(LOG)?;
    fs.dir_sync()
}

/// One epoch's `bulk_load` commit under `variant`, publishing the
/// payload as segment `seg-<seg_id>`. `ack` runs at the point the
/// variant acknowledges the caller (the correct protocol: after the
/// log fsync — the commit point is durable).
pub fn commit_with_id(
    fs: &SimFs,
    variant: ProtocolVariant,
    epoch: u8,
    seg_id: u8,
    ack: impl FnOnce(),
) -> OpResult {
    let seg = seg_name(seg_id);
    let tmp = format!("{seg}.tmp");
    let payload = payload_for(epoch);
    fs.create(&tmp)?;
    fs.append(&tmp, &frame_segment(&payload))?;
    match variant {
        ProtocolVariant::RenameBeforeFsync => {
            // BUG: the name goes durable before the bytes do.
            fs.rename(&tmp, &seg)?;
            fs.dir_sync()?;
        }
        ProtocolVariant::MissingDirSync => {
            // BUG: data is durable but the rename may not be.
            fs.fsync(&tmp)?;
            fs.rename(&tmp, &seg)?;
        }
        _ => {
            fs.fsync(&tmp)?;
            fs.rename(&tmp, &seg)?;
            fs.dir_sync()?;
        }
    }
    fs.append(LOG, &frame_record(epoch, seg_id, &payload))?;
    if variant == ProtocolVariant::AckBeforeLogSync {
        // BUG: the caller resumes before the commit point is durable.
        ack();
        fs.fsync(LOG)?;
    } else {
        fs.fsync(LOG)?;
        ack();
    }
    if variant == ProtocolVariant::RenameBeforeFsync {
        // The "eventual" data fsync — too late: the ack already went
        // out while the pages could still be lost.
        fs.fsync(&seg)?;
    }
    Ok(())
}

/// Checkpoints `epochs` into the manifest and truncates the log. The
/// in-place variant skips the tmp + rename dance — the seeded
/// manifest-corruption bug.
pub fn checkpoint(fs: &SimFs, variant: ProtocolVariant, epochs: &[u8]) -> OpResult {
    let body = frame_manifest(epochs);
    if variant == ProtocolVariant::InPlaceManifestOverwrite {
        // BUG: the only copy of the manifest is unparseable mid-write.
        fs.truncate(MANIFEST, 0)?;
        fs.append(MANIFEST, &body)?;
        fs.fsync(MANIFEST)?;
    } else {
        let tmp = format!("{MANIFEST}.tmp");
        fs.create(&tmp)?;
        fs.append(&tmp, &body)?;
        fs.fsync(&tmp)?;
        fs.rename(&tmp, MANIFEST)?;
        fs.dir_sync()?;
    }
    fs.truncate(LOG, 0)?;
    fs.fsync(LOG)
}

/// The standard workload the matrix tests explore: format, then
/// `commits` epochs (seg id = epoch), checkpointing every
/// `checkpoint_every` commits.
pub fn workload(
    fs: &SimFs,
    oracle: &mut Oracle,
    variant: ProtocolVariant,
    commits: u8,
    checkpoint_every: Option<u8>,
) -> OpResult {
    format_store(fs)?;
    for epoch in 1..=commits {
        oracle.started.push(epoch);
        let acked = &mut oracle.acked;
        commit_with_id(fs, variant, epoch, epoch, || acked.push(epoch))?;
        if checkpoint_every.is_some_and(|every| every > 0 && epoch % every == 0) {
            let epochs: Vec<u8> = (1..=epoch).collect();
            checkpoint(fs, variant, &epochs)?;
        }
    }
    Ok(())
}

fn fsr<T>(r: OpResult<T>) -> Result<T, String> {
    r.map_err(|_| "unexpected crash during recovery".to_string())
}

/// Replays a crash image back to a consistent store, repairing what
/// the spec allows (torn log tail, orphan tmp files, unreferenced
/// segments) and erroring on what it does not (D3).
pub fn recover(fs: &SimFs) -> Result<RecoveredView, String> {
    // 1. Orphan tmp files are in-flight writes that never published.
    for name in fsr(fs.list())? {
        if name.ends_with(".tmp") {
            fsr(fs.remove(&name))?;
        }
    }
    // 2. The manifest. Absent manifest + absent log = a crash before
    //    format finished: an empty store. Anything else is D3.
    let manifest_epochs: Vec<u8> = match fsr(fs.read(MANIFEST))? {
        None => {
            if fsr(fs.read(LOG))?.is_some() {
                return Err("D3: commit log exists but the manifest is missing".to_string());
            }
            Vec::new()
        }
        Some(bytes) => {
            parse_manifest(&bytes).map_err(|e| format!("D3: manifest unreadable: {e}"))?
        }
    };
    let mut view = RecoveredView::default();
    for &epoch in &manifest_epochs {
        let seg = seg_name(epoch);
        let bytes = fsr(fs.read(&seg))?
            .ok_or_else(|| format!("D3: manifest points at missing segment `{seg}`"))?;
        let payload = parse_segment(&bytes)
            .map_err(|e| format!("D3: manifest points at torn segment `{seg}`: {e}"))?;
        view.payloads.insert(epoch, payload);
    }
    // 3. Log replay: repair the torn tail, verify every surviving
    //    record's segment.
    let mut referenced: Vec<u8> = manifest_epochs.clone();
    if let Some(log) = fsr(fs.read(LOG))? {
        let (records, valid_len) = parse_log(&log);
        if valid_len < log.len() {
            fsr(fs.truncate(LOG, valid_len))?;
            fsr(fs.fsync(LOG))?;
        }
        for rec in records {
            referenced.push(rec.seg_id);
            if manifest_epochs.contains(&rec.epoch) {
                continue; // checkpointed before the log was truncated
            }
            let seg = seg_name(rec.seg_id);
            let bytes = fsr(fs.read(&seg))?.ok_or_else(|| {
                format!(
                    "D3: commit log references missing segment `{seg}` (epoch {})",
                    rec.epoch
                )
            })?;
            let payload = parse_segment(&bytes)
                .map_err(|e| format!("D3: commit log references torn segment `{seg}`: {e}"))?;
            if payload.len() != rec.plen as usize || checksum(&payload) != rec.pck {
                return Err(format!(
                    "D3: segment `{seg}` does not match its commit record (epoch {})",
                    rec.epoch
                ));
            }
            view.payloads.insert(rec.epoch, payload);
        }
    }
    // 4. Quarantine segments nothing references (published names whose
    //    commit never became durable).
    for name in fsr(fs.list())? {
        if let Some(id) = name.strip_prefix("seg-").and_then(|s| s.parse::<u8>().ok()) {
            if !referenced.contains(&id) {
                fsr(fs.remove(&name))?;
            }
        }
    }
    fsr(fs.dir_sync())?;
    Ok(view)
}

/// Full per-image check: recovery succeeds, is idempotent (D4), and
/// the view satisfies D1/D2 against the oracle.
pub fn recover_and_check(fs: &SimFs, oracle: &Oracle) -> Result<(), String> {
    let first = recover(fs)?;
    let second = recover(fs)
        .map_err(|e| format!("D4: recovery is not idempotent — the second run failed: {e}"))?;
    if first != second {
        return Err("D4: recovery is not idempotent — two runs disagree".to_string());
    }
    check_invariants(&first, oracle)
}

/// D1 + D2 over a recovered view.
pub fn check_invariants(view: &RecoveredView, oracle: &Oracle) -> Result<(), String> {
    for &epoch in &oracle.acked {
        match view.payloads.get(&epoch) {
            None => return Err(format!("D1: acked epoch {epoch} lost after recovery")),
            Some(p) if *p != payload_for(epoch) => {
                return Err(format!(
                    "D1: acked epoch {epoch} recovered with a corrupt payload"
                ))
            }
            _ => {}
        }
    }
    for (&epoch, payload) in &view.payloads {
        if !oracle.started.contains(&epoch) {
            return Err(format!(
                "D2: recovery surfaced epoch {epoch}, which never started"
            ));
        }
        if *payload != payload_for(epoch) {
            return Err(format!(
                "D2: epoch {epoch} visible after recovery with a partial payload"
            ));
        }
    }
    Ok(())
}

/// Exhaustively explores `variant` under the standard workload:
/// `Err` carries the first violated crash point + image + op trace.
pub fn explore(
    variant: ProtocolVariant,
    commits: u8,
    checkpoint_every: Option<u8>,
    opts: CrashOpts,
) -> Result<FsimReport, Box<FsimViolation>> {
    CrashExplorer { opts }.explore(
        Oracle::default,
        |fs, oracle| workload(fs, oracle, variant, commits, checkpoint_every),
        recover_and_check,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_and_reject_corruption() {
        let p = payload_for(3);
        let seg = frame_segment(&p);
        assert_eq!(parse_segment(&seg).unwrap(), p);
        let mut torn = seg.clone();
        torn[1] ^= 0x40;
        assert!(parse_segment(&torn).is_err());
        assert!(parse_segment(&vec![0u8; seg.len()]).is_err(), "zeros");

        let m = frame_manifest(&[1, 2, 3]);
        assert_eq!(parse_manifest(&m).unwrap(), vec![1, 2, 3]);
        assert!(parse_manifest(&m[..m.len() - 1]).is_err());

        let rec = frame_record(2, 2, &p);
        let (recs, len) = parse_log(&rec);
        assert_eq!(len, RECORD_LEN);
        assert_eq!(recs[0].epoch, 2);
        assert_eq!(recs[0].pck, checksum(&p));
        // A torn tail stops the replay at the last whole record.
        let mut log = rec.clone();
        log.extend_from_slice(&frame_record(3, 3, &p)[..4]);
        let (recs, len) = parse_log(&log);
        assert_eq!((recs.len(), len), (1, RECORD_LEN));
    }

    #[test]
    fn correct_single_commit_smoke() {
        let report = explore(ProtocolVariant::Correct, 1, None, CrashOpts::default())
            .unwrap_or_else(|v| panic!("spec violated:\n{v}"));
        assert!(report.exhausted);
        assert!(report.crash_points > 10);
        assert!(report.images > report.crash_points);
    }

    #[test]
    fn recovery_cleans_orphans_idempotently() {
        let fs = SimFs::new();
        let mut oracle = Oracle::default();
        workload(&fs, &mut oracle, ProtocolVariant::Correct, 2, None).unwrap();
        // Litter an orphan tmp and an unreferenced segment.
        fs.create("seg-9.tmp").unwrap();
        fs.create("seg-8").unwrap();
        let view = recover(&fs).unwrap();
        assert_eq!(view.payloads.len(), 2);
        assert_eq!(view.payloads[&1], payload_for(1));
        let names = fs.list().unwrap();
        assert!(!names.contains(&"seg-9.tmp".to_string()));
        assert!(!names.contains(&"seg-8".to_string()));
        assert_eq!(recover(&fs).unwrap(), view, "idempotent");
        check_invariants(&view, &oracle).unwrap();
    }
}
