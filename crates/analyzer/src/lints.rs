//! The invariant lints: project rules clippy cannot express, encoded as
//! token-stream walks over the workspace source.
//!
//! | lint | rule |
//! |------|------|
//! | `no-unwrap-in-service`  | no `.unwrap()`/`.expect()` in non-test service-layer code |
//! | `one-snapshot-per-path` | at most one snapshot acquisition per function body |
//! | `relaxed-ok-comment`    | every `Ordering::Relaxed` carries a `// relaxed-ok:` justification |
//! | `no-lock-reentry`       | an exclusive-lock scope must not re-enter the same lock |
//! | `must-use-snapshot`     | snapshot / plan / guard types must be `#[must_use]` |
//! | `wcoj-buffer-recycle`   | every trie level buffer popped off the open-level `stack` must return to the `spare` pool (and vice versa) on every exit path |
//! | `budget-checkpoint`     | every `loop`/`while` in the streaming hot paths must checkpoint the query budget (`budget.check()`) so deadlines and cancellation can interrupt it |
//! | `lock-order-cycle`      | the workspace-wide lock-acquisition-order graph must stay acyclic (cross-file: edges follow resolved method calls) |
//! | `io-ordering`           | persistence code must not publish (`rename`/`publish`) without a dominating `fsync`/`sync_all`/`dir_sync` earlier in the function |
//! | `unused-hatch`          | a `// analyzer-allow:` comment that silences nothing is stale and must go (warning; error under `--strict-hatches`) |
//!
//! Every lint has an inline escape hatch: a comment on the flagged line,
//! or in the contiguous comment block immediately above it, of the form
//! `// analyzer-allow: <lint-name> <reason>`. The reason is mandatory —
//! an allow without a justification is itself a violation. Hatches are
//! tracked: one that no lint ever consulted is reported by
//! `unused-hatch`, so fixes cannot leave silencers behind.
//!
//! Most lints are per-file token walks. `lock-order-cycle` is the
//! exception: [`scan_sources`] lexes the whole in-scope file set first
//! and resolves calls across files (same-file definitions win; a
//! cross-file edge needs the receiver field to name the defining file's
//! stem, e.g. `self.cache.clear()` resolves into `cache.rs`), then
//! rejects any cycle in the resulting lock-order graph.

use crate::lex::{self, Comment, Delim, Kind, Token};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::path::{Path, PathBuf};

/// The marker that silences any lint on its line (reason required).
const ALLOW_MARKER: &str = "analyzer-allow:";
/// The justification marker [`RELAXED`] requires.
const RELAXED_MARKER: &str = "relaxed-ok:";

pub const NO_UNWRAP: &str = "no-unwrap-in-service";
pub const ONE_SNAPSHOT: &str = "one-snapshot-per-path";
pub const RELAXED: &str = "relaxed-ok-comment";
pub const LOCK_REENTRY: &str = "no-lock-reentry";
pub const MUST_USE: &str = "must-use-snapshot";
pub const WCOJ_RECYCLE: &str = "wcoj-buffer-recycle";
pub const BUDGET_CHECKPOINT: &str = "budget-checkpoint";
pub const LOCK_ORDER: &str = "lock-order-cycle";
pub const IO_ORDERING: &str = "io-ordering";
pub const UNUSED_HATCH: &str = "unused-hatch";

/// The field pairing [`WCOJ_RECYCLE`] enforces: trie level buffers
/// shuttle between the open-level stack and the recycle pool.
const RECYCLE_STACK: &str = "stack";
const RECYCLE_POOL: &str = "spare";

/// Method names whose call acquires a store snapshot.
const SNAPSHOT_FNS: [&str; 4] = [
    "read_snapshot",
    "snapshot",
    "read_snapshot_for",
    "subject_snapshot",
];

/// Type-name suffixes [`MUST_USE`] requires `#[must_use]` on.
const MUST_USE_SUFFIXES: [&str; 3] = ["Snapshot", "Guard", "PlannedQuery"];

/// How a finding affects the `--check` exit code: errors always fail,
/// warnings fail only under `--strict-hatches`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

impl Severity {
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One lint violation, pointing at a file and line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    pub severity: Severity,
    /// Path relative to the scan root.
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}]{} {}",
            self.file,
            self.line,
            self.lint,
            match self.severity {
                Severity::Error => "",
                Severity::Warning => " warning:",
            },
            self.message
        )
    }
}

/// Which paths each path-scoped lint applies to. Matching is by suffix
/// (service files) or substring (lock and persistence files), so the
/// same config covers both the real workspace layout and the seeded
/// test fixtures.
pub struct Config {
    /// Files under the service-layer unwrap ban.
    pub service_files: Vec<String>,
    /// Path fragment selecting the files under the lock-reentry rule.
    pub lock_fragment: String,
    /// Files under the trie-buffer recycle discipline.
    pub recycle_files: Vec<String>,
    /// Files whose loops must checkpoint the query budget.
    pub budget_files: Vec<String>,
    /// Files whose lock acquisitions join the workspace-wide
    /// lock-order graph checked by [`LOCK_ORDER`].
    pub lock_order_files: Vec<String>,
    /// Path fragments selecting the persistence files under the
    /// [`IO_ORDERING`] publish-after-sync rule — matched by substring,
    /// so one fragment covers the real `store/src/persist/` module tree
    /// and the single-file fixtures alike.
    pub io_files: Vec<String>,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            service_files: vec![
                "store/src/service.rs".to_string(),
                "store/src/shard.rs".to_string(),
                "store/src/cache.rs".to_string(),
                "store/src/join.rs".to_string(),
                "store/src/persist/mod.rs".to_string(),
                "store/src/persist/vfs.rs".to_string(),
                "store/src/persist/format.rs".to_string(),
            ],
            lock_fragment: "store/src/".to_string(),
            recycle_files: vec!["store/src/wcoj.rs".to_string()],
            budget_files: vec![
                "store/src/wcoj.rs".to_string(),
                "store/src/join.rs".to_string(),
                "store/src/shard.rs".to_string(),
            ],
            lock_order_files: vec![
                "store/src/service.rs".to_string(),
                "store/src/shard.rs".to_string(),
                "store/src/cache.rs".to_string(),
            ],
            io_files: vec!["store/src/persist".to_string()],
        }
    }
}

/// Scans a directory tree and returns every finding, sorted by file and
/// line. When `root` looks like the workspace (has a `crates/` child),
/// only `src/` and `crates/*/src/` are scanned — tests, benches,
/// examples and the vendored stand-ins are out of scope by design (the
/// lints enforce *production-path* invariants). Any other root is walked
/// whole, which is how the fixture tests point the scanner at seeded
/// violations.
pub fn scan_root(root: &Path, cfg: &Config) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        collect_rs(&root.join("src"), &mut files)?;
        let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut files)?;
        }
    } else {
        collect_rs(root, &mut files)?;
    }
    files.sort();
    let mut sources = Vec::new();
    for file in &files {
        let src = std::fs::read_to_string(file)?;
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .into_owned();
        sources.push((rel, src));
    }
    Ok(scan_sources(&sources, cfg))
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints a whole file set as one unit: every per-file lint, then the
/// cross-file lock-order analysis over the in-scope files, then the
/// stale-hatch sweep (which must run last — any lint, including the
/// cross-file one, can be what a hatch silences). `files` pairs each
/// reported/config-matched path with its source text.
pub fn scan_sources(files: &[(String, String)], cfg: &Config) -> Vec<Finding> {
    let lexed: Vec<_> = files.iter().map(|(_, src)| lex::lex(src)).collect();
    let ctxs: Vec<FileCtx<'_>> = files
        .iter()
        .zip(&lexed)
        .map(|((rel, _), lx)| FileCtx::new(rel, &lx.tokens, &lx.comments))
        .collect();
    let mut findings = Vec::new();
    for ctx in &ctxs {
        let rel = ctx.rel;
        if cfg
            .service_files
            .iter()
            .any(|suffix| rel.ends_with(suffix.as_str()))
        {
            lint_no_unwrap(ctx, &mut findings);
        }
        lint_one_snapshot(ctx, &mut findings);
        lint_relaxed(ctx, &mut findings);
        if rel.contains(cfg.lock_fragment.as_str()) {
            lint_lock_reentry(ctx, &mut findings);
        }
        lint_must_use(ctx, &mut findings);
        if cfg
            .recycle_files
            .iter()
            .any(|suffix| rel.ends_with(suffix.as_str()))
        {
            lint_wcoj_recycle(ctx, &mut findings);
        }
        if cfg
            .budget_files
            .iter()
            .any(|suffix| rel.ends_with(suffix.as_str()))
        {
            lint_budget_checkpoint(ctx, &mut findings);
        }
        if cfg
            .io_files
            .iter()
            .any(|fragment| rel.contains(fragment.as_str()))
        {
            lint_io_ordering(ctx, &mut findings);
        }
    }
    lint_lock_order(&ctxs, cfg, &mut findings);
    for ctx in &ctxs {
        lint_unused_hatches(ctx, &mut findings);
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Lints one file's source text. `rel` is the path reported in findings
/// and matched against the path-scoped lint config.
pub fn scan_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    scan_sources(&[(rel.to_string(), src.to_string())], cfg)
}

// ---------------------------------------------------------------------
// Shared per-file machinery
// ---------------------------------------------------------------------

struct FileCtx<'a> {
    rel: &'a str,
    toks: &'a [Token],
    /// line → comment text (last comment wins; one per line in practice).
    comment_lines: HashMap<u32, &'a str>,
    /// Open-delimiter token index → matching close index.
    delims: HashMap<usize, usize>,
    /// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
    test_ranges: Vec<(u32, u32)>,
    /// Lines whose `analyzer-allow:` hatch some lint consulted — the
    /// complement (per [`lint_unused_hatches`]) is stale.
    used_hatches: RefCell<BTreeSet<u32>>,
}

impl<'a> FileCtx<'a> {
    fn new(rel: &'a str, toks: &'a [Token], comments: &'a [Comment]) -> FileCtx<'a> {
        let delims = match_delims(toks);
        let test_ranges = test_ranges(toks, &delims);
        FileCtx {
            rel,
            toks,
            comment_lines: comments.iter().map(|c| (c.line, c.text.as_str())).collect(),
            delims,
            test_ranges,
            used_hatches: RefCell::new(BTreeSet::new()),
        }
    }

    fn in_tests(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// True when `line` carries (or sits under) a hatch comment whose
    /// text starts with `marker` followed by a non-empty tail containing
    /// `required` (the lint name, or "" for markers like `relaxed-ok:`
    /// whose tail is free-form justification).
    fn hatched(&self, marker: &str, required: &str, line: u32) -> bool {
        let check = |l: u32| {
            self.comment_lines.get(&l).is_some_and(|text| {
                let text = text.trim_start();
                text.strip_prefix(marker).is_some_and(|tail| {
                    let tail = tail.trim();
                    if tail.is_empty() || !tail.starts_with(required) {
                        return false;
                    }
                    // The hatch was consulted for its lint at a real
                    // candidate site — not stale, even when the missing
                    // reason makes it invalid.
                    if marker == ALLOW_MARKER && !required.is_empty() {
                        self.used_hatches.borrow_mut().insert(l);
                    }
                    tail.len() > required.len()
                })
            })
        };
        if check(line) {
            return true;
        }
        // Walk up through the contiguous comment block above the line.
        let mut l = line;
        while l > 1 && self.comment_lines.contains_key(&(l - 1)) {
            l -= 1;
            if check(l) {
                return true;
            }
        }
        false
    }

    fn allowed(&self, lint: &'static str, line: u32) -> bool {
        self.hatched(ALLOW_MARKER, lint, line)
    }

    /// The line the statement containing token `idx` starts on — where
    /// a hatch comment above a multi-line statement actually sits.
    fn stmt_start_line(&self, idx: usize) -> u32 {
        let mut j = idx;
        while j > 0 {
            let t = &self.toks[j - 1];
            if t.is_punct(";")
                || matches!(t.kind, Kind::Open(Delim::Brace) | Kind::Close(Delim::Brace))
            {
                break;
            }
            j -= 1;
        }
        self.toks[j].line
    }

    /// [`FileCtx::allowed`], also accepting a hatch above the start of
    /// the (possibly multi-line) statement the token belongs to.
    fn allowed_tok(&self, lint: &'static str, idx: usize) -> bool {
        self.allowed(lint, self.toks[idx].line) || self.allowed(lint, self.stmt_start_line(idx))
    }

    fn finding(&self, lint: &'static str, line: u32, message: String) -> Finding {
        Finding {
            lint,
            severity: Severity::Error,
            file: self.rel.to_string(),
            line,
            message,
        }
    }

    fn warning(&self, lint: &'static str, line: u32, message: String) -> Finding {
        Finding {
            severity: Severity::Warning,
            ..self.finding(lint, line, message)
        }
    }
}

fn match_delims(toks: &[Token]) -> HashMap<usize, usize> {
    let mut map = HashMap::new();
    let mut stack: Vec<(Delim, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            Kind::Open(d) => stack.push((d, i)),
            Kind::Close(d) => {
                // Tolerate imbalance (the lexer is approximate): unwind
                // to the nearest open of the same class.
                while let Some((k, j)) = stack.pop() {
                    if k == d {
                        map.insert(j, i);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    map
}

/// Line ranges of items behind `#[cfg(test)]` or `#[test]`: from the
/// attribute to the close of the item's body. Test code is out of scope
/// for every lint — tests exercise panics and orderings on purpose.
fn test_ranges(toks: &[Token], delims: &HashMap<usize, usize>) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_punct("#") && toks[i + 1].kind == Kind::Open(Delim::Bracket) {
            let close = match delims.get(&(i + 1)) {
                Some(&c) => c,
                None => break,
            };
            let inner = &toks[i + 2..close];
            // `#[test]` exactly, or `cfg` immediately followed by `(test`.
            let bare_test = inner.len() == 1 && inner[0].is_ident("test");
            let cfg_test = inner.windows(3).any(|w| {
                w[0].is_ident("cfg")
                    && w[1].kind == Kind::Open(Delim::Paren)
                    && w[2].is_ident("test")
            });
            if bare_test || cfg_test {
                // Skip any further attributes, then span the item body.
                let mut j = close + 1;
                while j + 1 < toks.len()
                    && toks[j].is_punct("#")
                    && toks[j + 1].kind == Kind::Open(Delim::Bracket)
                {
                    match delims.get(&(j + 1)) {
                        Some(&c) => j = c + 1,
                        None => break,
                    }
                }
                let mut depth_guard = j;
                let mut body = None;
                while depth_guard < toks.len() {
                    match toks[depth_guard].kind {
                        Kind::Open(Delim::Brace) => {
                            body = delims.get(&depth_guard).copied();
                            break;
                        }
                        Kind::Open(_) => {
                            depth_guard =
                                delims.get(&depth_guard).copied().unwrap_or(depth_guard) + 1;
                        }
                        Kind::Punct if toks[depth_guard].text == ";" => break,
                        _ => depth_guard += 1,
                    }
                }
                if let Some(body_close) = body {
                    out.push((toks[i].line, toks[body_close].line));
                    i = body_close + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// A function item: its name and body token span (open/close indices).
struct FnSpan {
    name: String,
    body: (usize, usize),
}

fn fn_spans(toks: &[Token], delims: &HashMap<usize, usize>) -> Vec<FnSpan> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !toks[i].is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != Kind::Ident {
            continue; // `fn(...)` pointer type, not an item
        }
        let mut j = i + 2;
        while j < toks.len() {
            match toks[j].kind {
                Kind::Open(Delim::Brace) => {
                    if let Some(&close) = delims.get(&j) {
                        out.push(FnSpan {
                            name: name_tok.text.clone(),
                            body: (j, close),
                        });
                    }
                    break;
                }
                // Skip parameter lists, generics-adjacent groups, return
                // types in brackets — none of them open the body.
                Kind::Open(_) => j = delims.get(&j).copied().unwrap_or(j) + 1,
                Kind::Punct if toks[j].text == ";" => break, // trait decl
                _ => j += 1,
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Lint: no-unwrap-in-service
// ---------------------------------------------------------------------

fn lint_no_unwrap(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for w in windows3(ctx.toks) {
        let (a, b, c) = w;
        if ctx.toks[a].is_punct(".")
            && (ctx.toks[b].is_ident("unwrap") || ctx.toks[b].is_ident("expect"))
            && ctx.toks[c].kind == Kind::Open(Delim::Paren)
        {
            let line = ctx.toks[b].line;
            if ctx.in_tests(line) || ctx.allowed_tok(NO_UNWRAP, b) {
                continue;
            }
            findings.push(ctx.finding(
                NO_UNWRAP,
                line,
                format!(
                    "`.{}()` in service-layer non-test code: convert to a typed error, or \
                     justify the invariant with `// {} {} <why it cannot fail>`",
                    ctx.toks[b].text, ALLOW_MARKER, NO_UNWRAP
                ),
            ));
        }
    }
}

fn windows3(toks: &[Token]) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
    (0..toks.len().saturating_sub(2)).map(|i| (i, i + 1, i + 2))
}

// ---------------------------------------------------------------------
// Lint: one-snapshot-per-path
// ---------------------------------------------------------------------

fn lint_one_snapshot(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for f in fn_spans(ctx.toks, &ctx.delims) {
        let (open, close) = f.body;
        if ctx.in_tests(ctx.toks[open].line) {
            continue;
        }
        let mut sites: Vec<u32> = Vec::new();
        for i in open + 1..close {
            let tok = &ctx.toks[i];
            if tok.kind != Kind::Ident || !SNAPSHOT_FNS.contains(&tok.text.as_str()) {
                continue;
            }
            // A call (next token `(`) through a receiver or path (prev
            // token `.` or `::`) — declarations and bare fn references
            // do not acquire.
            let is_call = ctx.toks.get(i + 1).map(|t| t.kind) == Some(Kind::Open(Delim::Paren));
            let through = ctx
                .toks
                .get(i.wrapping_sub(1))
                .is_some_and(|t| t.is_punct(".") || t.is_punct("::"));
            if !is_call || !through {
                continue;
            }
            let line = tok.line;
            if ctx.in_tests(line) || ctx.allowed_tok(ONE_SNAPSHOT, i) {
                continue;
            }
            sites.push(line);
        }
        if sites.len() >= 2 {
            findings.push(ctx.finding(
                ONE_SNAPSHOT,
                sites[1],
                format!(
                    "fn `{}` acquires {} snapshots; plan and execution must share one snapshot \
                     (the PR 3 epoch-race class) — thread a single snapshot through, or justify \
                     disjoint branches with `// {} {} <reason>`",
                    f.name,
                    sites.len(),
                    ALLOW_MARKER,
                    ONE_SNAPSHOT
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Lint: relaxed-ok-comment
// ---------------------------------------------------------------------

fn lint_relaxed(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for i in 1..ctx.toks.len() {
        if ctx.toks[i].is_ident("Relaxed") && ctx.toks[i - 1].is_punct("::") {
            let line = ctx.toks[i].line;
            if ctx.in_tests(line)
                || ctx.hatched(RELAXED_MARKER, "", line)
                || ctx.hatched(RELAXED_MARKER, "", ctx.stmt_start_line(i))
                || ctx.allowed_tok(RELAXED, i)
            {
                continue;
            }
            findings.push(ctx.finding(
                RELAXED,
                line,
                format!(
                    "`Ordering::Relaxed` without a `// {} <why no ordering is needed>` \
                     justification",
                    RELAXED_MARKER
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Lint: no-lock-reentry
// ---------------------------------------------------------------------

const ACQUIRE_METHODS: [&str; 3] = ["read", "write", "lock"];
const EXCLUSIVE_METHODS: [&str; 2] = ["write", "lock"];

/// `self . FIELD . {read|write|lock} (` starting at token `i`; returns
/// the field name.
fn acquisition_at<'a>(toks: &'a [Token], i: usize, methods: &[&str]) -> Option<&'a str> {
    if toks.len() < i + 6 {
        return None;
    }
    (toks[i].is_ident("self")
        && toks[i + 1].is_punct(".")
        && toks[i + 2].kind == Kind::Ident
        && toks[i + 3].is_punct(".")
        && toks[i + 4].kind == Kind::Ident
        && methods.contains(&toks[i + 4].text.as_str())
        && toks[i + 5].kind == Kind::Open(Delim::Paren))
    .then(|| toks[i + 2].text.as_str())
}

/// `self . METHOD (` starting at token `i`; returns the method name.
fn self_call_at(toks: &[Token], i: usize) -> Option<&str> {
    if toks.len() < i + 4 {
        return None;
    }
    (toks[i].is_ident("self")
        && toks[i + 1].is_punct(".")
        && toks[i + 2].kind == Kind::Ident
        && toks[i + 3].kind == Kind::Open(Delim::Paren))
    .then(|| toks[i + 2].text.as_str())
}

fn lint_lock_reentry(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let spans = fn_spans(ctx.toks, &ctx.delims);
    // Phase A: which lock fields does each method acquire, directly or
    // through other same-file methods (transitive closure — one file is
    // the unit; cross-type calls are out of scope).
    let mut locks: HashMap<String, Vec<String>> = HashMap::new();
    for f in &spans {
        let entry = locks.entry(f.name.clone()).or_default();
        for i in f.body.0 + 1..f.body.1 {
            if let Some(field) = acquisition_at(ctx.toks, i, &ACQUIRE_METHODS) {
                if !entry.iter().any(|f| f == field) {
                    entry.push(field.to_string());
                }
            }
        }
    }
    loop {
        let mut changed = false;
        for f in &spans {
            let mut inherited: Vec<String> = Vec::new();
            for i in f.body.0 + 1..f.body.1 {
                if let Some(callee) = self_call_at(ctx.toks, i) {
                    if let Some(fields) = locks.get(callee) {
                        inherited.extend(fields.iter().cloned());
                    }
                }
            }
            let entry = locks.entry(f.name.clone()).or_default();
            for field in inherited {
                if !entry.contains(&field) {
                    entry.push(field);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Phase B: inside each exclusive-lock scope, flag same-lock
    // re-acquisition — direct, or through a self method that acquires
    // the same field.
    for f in &spans {
        let (open, close) = f.body;
        if ctx.in_tests(ctx.toks[open].line) {
            continue;
        }
        for i in open + 1..close {
            let Some(field) = acquisition_at(ctx.toks, i, &EXCLUSIVE_METHODS) else {
                continue;
            };
            let scope_end = scope_end(ctx, open, close, i);
            let mut j = i + 6; // past the acquisition's own tokens
            while j < scope_end {
                let line = ctx.toks[j].line;
                if let Some(field2) = acquisition_at(ctx.toks, j, &ACQUIRE_METHODS) {
                    if field2 == field && !ctx.allowed_tok(LOCK_REENTRY, j) {
                        findings.push(ctx.finding(
                            LOCK_REENTRY,
                            line,
                            format!(
                                "re-acquires `self.{field}` while fn `{}` still holds its \
                                 exclusive guard (deadlock with the vendored std-backed locks)",
                                f.name
                            ),
                        ));
                    }
                    j += 6;
                    continue;
                }
                if let Some(callee) = self_call_at(ctx.toks, j) {
                    if locks
                        .get(callee)
                        .is_some_and(|fields| fields.iter().any(|f| *f == field))
                        && !ctx.allowed_tok(LOCK_REENTRY, j)
                    {
                        findings.push(ctx.finding(
                            LOCK_REENTRY,
                            line,
                            format!(
                                "calls `self.{callee}()` — which acquires `self.{field}` — while \
                                 fn `{}` still holds the `self.{field}` exclusive guard",
                                f.name
                            ),
                        ));
                    }
                }
                j += 1;
            }
        }
    }
}

/// Where the guard taken at token `acq` stops being live, approximated:
/// a `let`-bound guard lives to the end of its enclosing block (or an
/// explicit `drop(<name>)`); a temporary (no `let`, or an `if let` /
/// `while let` scrutinee) lives to the end of the statement.
fn scope_end(ctx: &FileCtx<'_>, body_open: usize, body_close: usize, acq: usize) -> usize {
    // Walk back to the statement start, looking for `let` (and whether
    // it is an `if let` / `while let`).
    let mut is_let = false;
    let mut binding: Option<&str> = None;
    let mut j = acq;
    while j > body_open + 1 {
        j -= 1;
        let t = &ctx.toks[j];
        if t.is_punct(";") || matches!(t.kind, Kind::Open(Delim::Brace) | Kind::Close(Delim::Brace))
        {
            break;
        }
        if t.is_ident("let") {
            let conditional = ctx
                .toks
                .get(j.wrapping_sub(1))
                .is_some_and(|p| p.is_ident("if") || p.is_ident("while"));
            if !conditional {
                is_let = true;
                // `let [mut] NAME = ...`: a plain binding we can track
                // through `drop(NAME)`. Destructuring bindings get block
                // scope without drop tracking.
                let mut k = j + 1;
                if ctx.toks.get(k).is_some_and(|t| t.is_ident("mut")) {
                    k += 1;
                }
                if ctx.toks.get(k).map(|t| t.kind) == Some(Kind::Ident)
                    && ctx.toks.get(k + 1).is_some_and(|t| t.is_punct("="))
                {
                    binding = Some(ctx.toks[k].text.as_str());
                }
            }
            break;
        }
    }
    if is_let {
        // Innermost block enclosing the acquisition.
        let mut end = body_close;
        let mut best_open = body_open;
        for (&o, &c) in &ctx.delims {
            if ctx.toks[o].kind == Kind::Open(Delim::Brace) && o < acq && acq < c && o > best_open {
                best_open = o;
                end = c;
            }
        }
        // An explicit early drop truncates the scope.
        if let Some(name) = binding {
            let mut k = acq;
            while k + 3 < end {
                if ctx.toks[k].is_ident("drop")
                    && ctx.toks[k + 1].kind == Kind::Open(Delim::Paren)
                    && ctx.toks[k + 2].is_ident(name)
                    && ctx.toks[k + 3].kind == Kind::Close(Delim::Paren)
                {
                    return k;
                }
                k += 1;
            }
        }
        end
    } else {
        // Temporary guard: to the end of the statement — the next `;`
        // at this depth, or the close of the first block the statement
        // opens (`if let ... { ... }`), whichever comes first.
        let mut depth = 0i32;
        let mut k = acq;
        while k < body_close {
            match ctx.toks[k].kind {
                Kind::Open(Delim::Brace) if depth == 0 && k > acq => {
                    return ctx.delims.get(&k).copied().unwrap_or(body_close);
                }
                Kind::Open(_) => depth += 1,
                Kind::Close(_) => {
                    depth -= 1;
                    if depth < 0 {
                        return k;
                    }
                }
                Kind::Punct if ctx.toks[k].text == ";" && depth == 0 => return k,
                _ => {}
            }
            k += 1;
        }
        body_close
    }
}

// ---------------------------------------------------------------------
// Lint: wcoj-buffer-recycle
// ---------------------------------------------------------------------

/// `self . FIELD . METHOD (` starting at token `i`; returns the pair.
fn field_method_at(toks: &[Token], i: usize) -> Option<(&str, &str)> {
    if toks.len() < i + 6 {
        return None;
    }
    (toks[i].is_ident("self")
        && toks[i + 1].is_punct(".")
        && toks[i + 2].kind == Kind::Ident
        && toks[i + 3].is_punct(".")
        && toks[i + 4].kind == Kind::Ident
        && toks[i + 5].kind == Kind::Open(Delim::Paren))
    .then(|| (toks[i + 2].text.as_str(), toks[i + 4].text.as_str()))
}

/// Trie level buffers shuttle between the open-level `stack` and the
/// `spare` recycle pool (the leapfrog's allocation-free descent). The
/// lint enforces the conservation law per function: every
/// `self.stack.pop(...)` must be matched by a later `self.spare.push(...)`
/// in the same body, every `self.spare.pop(...)` by a later
/// `self.stack.push(...)` — and no `return` may sit between a take and
/// its give (an early exit there drops the buffer on the floor, and the
/// pool never refills: a slow leak per binding step).
fn lint_wcoj_recycle(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for f in fn_spans(ctx.toks, &ctx.delims) {
        let (open, close) = f.body;
        if ctx.in_tests(ctx.toks[open].line) {
            continue;
        }
        let mut sites: Vec<(usize, &str, &str)> = Vec::new();
        for i in open + 1..close {
            if let Some((field, method)) = field_method_at(ctx.toks, i) {
                if (field == RECYCLE_STACK || field == RECYCLE_POOL)
                    && (method == "pop" || method == "push")
                {
                    sites.push((i, field, method));
                }
            }
        }
        for (take_field, give_field) in
            [(RECYCLE_STACK, RECYCLE_POOL), (RECYCLE_POOL, RECYCLE_STACK)]
        {
            let takes: Vec<usize> = sites
                .iter()
                .filter(|(_, f, m)| *f == take_field && *m == "pop")
                .map(|&(i, _, _)| i)
                .collect();
            let mut gives: Vec<usize> = sites
                .iter()
                .filter(|(_, f, m)| *f == give_field && *m == "push")
                .map(|&(i, _, _)| i)
                .collect();
            for take in takes {
                if ctx.allowed_tok(WCOJ_RECYCLE, take) {
                    continue;
                }
                // Pair with the first give after the take.
                let Some(pos) = gives.iter().position(|&g| g > take) else {
                    findings.push(ctx.finding(
                        WCOJ_RECYCLE,
                        ctx.toks[take].line,
                        format!(
                            "fn `{}` pops a level buffer off `self.{take_field}` but never \
                             pushes one back to `self.{give_field}`: the buffer leaks and the \
                             recycle pool starves — return it, or justify with \
                             `// {} {} <reason>`",
                            f.name, ALLOW_MARKER, WCOJ_RECYCLE
                        ),
                    ));
                    continue;
                };
                let give = gives.remove(pos);
                // An exit between the take and its give drops the buffer.
                for j in take + 6..give {
                    if ctx.toks[j].is_ident("return") && !ctx.allowed_tok(WCOJ_RECYCLE, j) {
                        findings.push(ctx.finding(
                            WCOJ_RECYCLE,
                            ctx.toks[j].line,
                            format!(
                                "fn `{}` returns between `self.{take_field}.pop()` and \
                                 `self.{give_field}.push()`: this exit path leaks the level \
                                 buffer",
                                f.name
                            ),
                        ));
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Lint: budget-checkpoint
// ---------------------------------------------------------------------

/// Streaming hot paths must stay interruptible: a `loop`/`while` that
/// never consults the query budget outlives every deadline and ignores
/// cancellation (the PR 8 streaming-core contract — checkpoints at
/// stream-pull granularity *and* inside the join inner loops). The lint
/// requires a `budget.check()` call lexically inside each loop (the
/// keyword through its body close; a check in the loop condition
/// counts), with the usual hatch for planning-time loops whose trip
/// count is bounded by the query size, not the data.
fn lint_budget_checkpoint(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for f in fn_spans(ctx.toks, &ctx.delims) {
        let (open, close) = f.body;
        if ctx.in_tests(ctx.toks[open].line) {
            continue;
        }
        for i in open + 1..close {
            let kw = &ctx.toks[i];
            if !kw.is_ident("loop") && !kw.is_ident("while") {
                continue;
            }
            // The loop body: the first brace after the keyword (header
            // parens/brackets are skipped whole — Rust bans brace
            // expressions in loop headers, so this brace is the body).
            let mut j = i + 1;
            let mut body_open = None;
            while j < close {
                match ctx.toks[j].kind {
                    Kind::Open(Delim::Brace) => {
                        body_open = Some(j);
                        break;
                    }
                    Kind::Open(_) => j = ctx.delims.get(&j).copied().unwrap_or(j) + 1,
                    _ => j += 1,
                }
            }
            let Some(body_open) = body_open else {
                continue;
            };
            let body_close = ctx.delims.get(&body_open).copied().unwrap_or(close);
            let checked = (i..body_close).any(|k| {
                ctx.toks[k].is_ident("budget")
                    && ctx.toks.get(k + 1).is_some_and(|t| t.is_punct("."))
                    && ctx.toks.get(k + 2).is_some_and(|t| t.is_ident("check"))
            });
            if checked || ctx.allowed_tok(BUDGET_CHECKPOINT, i) {
                continue;
            }
            findings.push(ctx.finding(
                BUDGET_CHECKPOINT,
                kw.line,
                format!(
                    "`{}` in fn `{}` never checkpoints the query budget: this loop outlives \
                     every deadline and ignores cancellation — call `budget.check()?` inside \
                     it, or justify with `// {} {} <reason>`",
                    kw.text, f.name, ALLOW_MARKER, BUDGET_CHECKPOINT
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------
// Lint: must-use-snapshot
// ---------------------------------------------------------------------

fn lint_must_use(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.toks.len().saturating_sub(1) {
        if !ctx.toks[i].is_ident("struct") && !ctx.toks[i].is_ident("enum") {
            continue;
        }
        let name_tok = &ctx.toks[i + 1];
        if name_tok.kind != Kind::Ident {
            continue;
        }
        let name = name_tok.text.as_str();
        if !MUST_USE_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        let line = name_tok.line;
        if ctx.in_tests(line) || ctx.allowed(MUST_USE, line) {
            continue;
        }
        if has_must_use_attr(ctx, i) {
            continue;
        }
        findings.push(ctx.finding(
            MUST_USE,
            line,
            format!(
                "type `{name}` names a snapshot/plan/guard but is not `#[must_use]`: a silently \
                 dropped value of it is a query that never ran or a pin that never held"
            ),
        ));
    }
}

/// Walks backward from the `struct`/`enum` keyword over visibility and
/// attributes, checking any `#[...]` group for `must_use`.
fn has_must_use_attr(ctx: &FileCtx<'_>, kw: usize) -> bool {
    let mut i = kw;
    while i > 0 {
        i -= 1;
        let t = &ctx.toks[i];
        if t.is_ident("pub") {
            continue;
        }
        if t.kind == Kind::Close(Delim::Paren) {
            // `pub(crate)` and friends: rewind to the open.
            let mut depth = 1;
            while i > 0 && depth > 0 {
                i -= 1;
                match ctx.toks[i].kind {
                    Kind::Close(Delim::Paren) => depth += 1,
                    Kind::Open(Delim::Paren) => depth -= 1,
                    _ => {}
                }
            }
            continue;
        }
        if t.kind == Kind::Close(Delim::Bracket) {
            // An attribute group: rewind to its open, check for the
            // marker, and keep walking (multiple attributes stack).
            let mut depth = 1;
            let close = i;
            while i > 0 && depth > 0 {
                i -= 1;
                match ctx.toks[i].kind {
                    Kind::Close(Delim::Bracket) => depth += 1,
                    Kind::Open(Delim::Bracket) => depth -= 1,
                    _ => {}
                }
            }
            if ctx.toks[close.min(ctx.toks.len() - 1)].kind == Kind::Close(Delim::Bracket)
                && ctx.toks[i..close].iter().any(|t| t.is_ident("must_use"))
            {
                return true;
            }
            // Expect the `#` before the bracket; consume it if present.
            if i > 0 && ctx.toks[i - 1].is_punct("#") {
                i -= 1;
            }
            continue;
        }
        break;
    }
    false
}

// ---------------------------------------------------------------------
// Lint: io-ordering
// ---------------------------------------------------------------------

/// Calls that make a write visible to recovery.
const PUBLISH_FNS: [&str; 2] = ["rename", "publish"];
/// Calls that make written data durable first.
const SYNC_FNS: [&str; 4] = ["fsync", "sync_all", "sync_data", "dir_sync"];

/// Persistence code must sync before it publishes: a `rename` (or a
/// method named `publish`) with no `fsync`/`sync_all`/`sync_data`/
/// `dir_sync` call earlier in the same function body is exactly the
/// rename-before-fsync crash bug the `fsim` model checker catches
/// dynamically — a crash can persist the new name pointing at data
/// still in the page cache.
fn lint_io_ordering(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for f in fn_spans(ctx.toks, &ctx.delims) {
        let (open, close) = f.body;
        if ctx.in_tests(ctx.toks[open].line) {
            continue;
        }
        let mut synced = false;
        for i in open + 1..close {
            let tok = &ctx.toks[i];
            if tok.kind != Kind::Ident
                || ctx.toks.get(i + 1).map(|t| t.kind) != Some(Kind::Open(Delim::Paren))
                || ctx
                    .toks
                    .get(i.wrapping_sub(1))
                    .is_some_and(|t| t.is_ident("fn"))
            {
                continue;
            }
            let name = tok.text.as_str();
            if SYNC_FNS.contains(&name) {
                synced = true;
            } else if PUBLISH_FNS.contains(&name) && !synced {
                if ctx.allowed_tok(IO_ORDERING, i) {
                    continue;
                }
                findings.push(ctx.finding(
                    IO_ORDERING,
                    tok.line,
                    format!(
                        "fn `{}` publishes via `{name}()` with no dominating sync: a crash can \
                         persist the new name before the data it points to (the \
                         rename-before-fsync class) — fsync the file and dir_sync the directory \
                         first, or justify with `// {} {} <reason>`",
                        f.name, ALLOW_MARKER, IO_ORDERING
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Lint: unused-hatch
// ---------------------------------------------------------------------

/// Every `analyzer-allow:` comment must silence something. A hatch no
/// lint consulted during the scan — because the violation it excused
/// was fixed, the lint name is misspelled, or the file fell out of the
/// lint's scope — is reported as a warning so fixes cannot leave
/// silencers behind. Must run after every other lint (including the
/// cross-file pass), since any of them may be the consumer.
fn lint_unused_hatches(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    let used = ctx.used_hatches.borrow();
    let mut lines: Vec<(&u32, &&str)> = ctx.comment_lines.iter().collect();
    lines.sort();
    for (&line, text) in lines {
        let Some(tail) = text.trim_start().strip_prefix(ALLOW_MARKER) else {
            continue;
        };
        if ctx.in_tests(line) || used.contains(&line) {
            continue;
        }
        let name = tail
            .split_whitespace()
            .next()
            .unwrap_or("<missing lint name>");
        findings.push(ctx.warning(
            UNUSED_HATCH,
            line,
            format!(
                "stale `// {ALLOW_MARKER} {name}` hatch: no `{name}` violation is silenced \
                 here — delete it, or fix the lint name"
            ),
        ));
    }
}

// ---------------------------------------------------------------------
// Lint: lock-order-cycle (cross-file)
// ---------------------------------------------------------------------

/// `"store/src/cache.rs"` → `"cache"`.
fn file_stem(rel: &str) -> &str {
    let base = rel.rsplit('/').next().unwrap_or(rel);
    base.strip_suffix(".rs").unwrap_or(base)
}

/// The workspace-wide lock-order analysis. Over every file in
/// [`Config::lock_order_files`]:
///
/// 1. build a symbol graph: each function's *lock set* — the lock
///    fields (`self.FIELD.{read|write|lock}()`) it may acquire,
///    directly or through resolved calls. Same-file calls resolve via
///    `self.method()`; cross-file calls via `self.<field>.<method>()`
///    where `<field>` names the defining file's stem (the workspace
///    convention: `self.cache.clear()` lives in `cache.rs`). Anything
///    else stays unresolved — under-approximating edges keeps the lint
///    free of std-method false positives (`.len()`, `.get()`, ...);
/// 2. add an edge `A → B` whenever `B` is acquired (directly or via a
///    resolved call) inside the live scope of a guard for `A`. Locks
///    are named `<file-stem>.<field>`; self-edges are `no-lock-reentry`
///    territory, not an order;
/// 3. reject any cycle. Each cycle is reported once, at the edge out of
///    its lexicographically smallest lock, and is hatchable there.
fn lint_lock_order(ctxs: &[FileCtx<'_>], cfg: &Config, findings: &mut Vec<Finding>) {
    let scoped: Vec<&FileCtx<'_>> = ctxs
        .iter()
        .filter(|c| {
            cfg.lock_order_files
                .iter()
                .any(|suffix| c.rel.ends_with(suffix.as_str()))
        })
        .collect();
    if scoped.is_empty() {
        return;
    }
    let spans: Vec<Vec<FnSpan>> = scoped.iter().map(|c| fn_spans(c.toks, &c.delims)).collect();
    // Where is `fn name` defined? (file position in `scoped` → span idx)
    let mut defs: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, fns) in spans.iter().enumerate() {
        for (si, f) in fns.iter().enumerate() {
            defs.entry(f.name.as_str()).or_default().push((fi, si));
        }
    }
    // Resolve the call starting at token `i` of file `fi`, if any.
    let resolve = |fi: usize, i: usize| -> Option<(usize, usize)> {
        let toks = scoped[fi].toks;
        if let Some((field, method)) = field_method_at(toks, i) {
            if ACQUIRE_METHODS.contains(&method) {
                return None; // an acquisition, not a call
            }
            let (ti, _) = scoped
                .iter()
                .enumerate()
                .find(|(_, c)| file_stem(c.rel) == field)?;
            return defs
                .get(method)?
                .iter()
                .find(|&&(dfi, _)| dfi == ti)
                .copied();
        }
        let callee = self_call_at(toks, i)?;
        defs.get(callee)?
            .iter()
            .find(|&&(dfi, _)| dfi == fi)
            .copied()
    };
    // Fixpoint: each function's transitive lock set, across files.
    let lock_id = |fi: usize, field: &str| format!("{}.{field}", file_stem(scoped[fi].rel));
    let mut lock_sets: HashMap<(usize, usize), BTreeSet<String>> = HashMap::new();
    for (fi, fns) in spans.iter().enumerate() {
        for (si, f) in fns.iter().enumerate() {
            let mut set = BTreeSet::new();
            for i in f.body.0 + 1..f.body.1 {
                if let Some(field) = acquisition_at(scoped[fi].toks, i, &ACQUIRE_METHODS) {
                    set.insert(lock_id(fi, field));
                }
            }
            lock_sets.insert((fi, si), set);
        }
    }
    loop {
        let mut changed = false;
        for (fi, fns) in spans.iter().enumerate() {
            for (si, f) in fns.iter().enumerate() {
                let mut inherited: BTreeSet<String> = BTreeSet::new();
                for i in f.body.0 + 1..f.body.1 {
                    if let Some(callee) = resolve(fi, i) {
                        if let Some(set) = lock_sets.get(&callee) {
                            inherited.extend(set.iter().cloned());
                        }
                    }
                }
                let entry = lock_sets.entry((fi, si)).or_default();
                for l in inherited {
                    changed |= entry.insert(l);
                }
            }
        }
        if !changed {
            break;
        }
    }
    // Edges: B acquired while A's guard is live. Site = (file, token).
    let mut edges: BTreeMap<String, Vec<(String, usize, usize)>> = BTreeMap::new();
    for (fi, fns) in spans.iter().enumerate() {
        let ctx = scoped[fi];
        for f in fns {
            let (open, close) = f.body;
            if ctx.in_tests(ctx.toks[open].line) {
                continue;
            }
            for i in open + 1..close {
                let Some(field) = acquisition_at(ctx.toks, i, &ACQUIRE_METHODS) else {
                    continue;
                };
                let held = lock_id(fi, field);
                let end = scope_end(ctx, open, close, i);
                for j in i + 6..end {
                    if let Some(f2) = acquisition_at(ctx.toks, j, &ACQUIRE_METHODS) {
                        let next = lock_id(fi, f2);
                        if next != held {
                            edges.entry(held.clone()).or_default().push((next, fi, j));
                        }
                    } else if let Some(callee) = resolve(fi, j) {
                        for next in lock_sets.get(&callee).into_iter().flatten() {
                            if *next != held {
                                edges
                                    .entry(held.clone())
                                    .or_default()
                                    .push((next.clone(), fi, j));
                            }
                        }
                    }
                }
            }
        }
    }
    // Cycle rejection: report each cycle once, at the edge out of its
    // smallest lock.
    let mut reported: BTreeSet<Vec<String>> = BTreeSet::new();
    for (src, outs) in &edges {
        for (dst, fi, tok) in outs {
            let Some(path) = shortest_path(&edges, dst, src) else {
                continue;
            };
            // `path` is `dst`-exclusive and `src`-inclusive; the cycle
            // node list is src, dst, ..., last-before-src.
            let mut cycle = vec![src.clone(), dst.clone()];
            cycle.extend(path[..path.len() - 1].iter().cloned());
            if cycle.iter().min() != Some(src) || reported.contains(&cycle) {
                continue;
            }
            let ctx = scoped[*fi];
            if ctx.allowed_tok(LOCK_ORDER, *tok) {
                reported.insert(cycle);
                continue;
            }
            let rendered = cycle
                .iter()
                .chain(std::iter::once(src))
                .cloned()
                .collect::<Vec<_>>()
                .join(" -> ");
            findings.push(ctx.finding(
                LOCK_ORDER,
                ctx.toks[*tok].line,
                format!(
                    "lock-order cycle {rendered}: this edge acquires `{dst}` while holding \
                     `{src}`, but another path acquires them in the opposite order — pick one \
                     global order, or justify with `// {} {} <reason>`",
                    ALLOW_MARKER, LOCK_ORDER
                ),
            ));
            reported.insert(cycle);
        }
    }
}

/// BFS shortest node path `from → … → to` over the edge map, inclusive
/// of `to`, exclusive of `from`. `None` when unreachable.
fn shortest_path(
    edges: &BTreeMap<String, Vec<(String, usize, usize)>>,
    from: &str,
    to: &str,
) -> Option<Vec<String>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(node) = queue.pop_front() {
        for (next, _, _) in edges.get(node).into_iter().flatten() {
            if next != from && !prev.contains_key(next.as_str()) {
                prev.insert(next, node);
                if next == to {
                    let mut path = vec![to.to_string()];
                    let mut at = to;
                    while let Some(&p) = prev.get(at) {
                        if p == from {
                            break;
                        }
                        path.push(p.to_string());
                        at = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(rel: &str, src: &str) -> Vec<Finding> {
        scan_source(rel, src, &Config::default())
    }

    #[test]
    fn unwrap_flagged_only_in_service_files_outside_tests() {
        let src = r#"
            fn hot(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) -> u32 { x.unwrap() }
            }
        "#;
        let f = scan("crates/store/src/service.rs", src);
        assert_eq!(f.iter().filter(|f| f.lint == NO_UNWRAP).count(), 1);
        assert_eq!(f[0].line, 2);
        // The same text in a non-service file is out of scope.
        assert!(scan("crates/rdf/src/term.rs", src)
            .iter()
            .all(|f| f.lint != NO_UNWRAP));
    }

    #[test]
    fn allow_comment_needs_a_reason() {
        let hatched = r#"
            fn hot(x: Option<u32>) -> u32 {
                // analyzer-allow: no-unwrap-in-service the caller checked is_some
                x.unwrap()
            }
        "#;
        assert!(scan("store/src/service.rs", hatched).is_empty());
        let bare = r#"
            fn hot(x: Option<u32>) -> u32 {
                // analyzer-allow: no-unwrap-in-service
                x.unwrap()
            }
        "#;
        assert_eq!(scan("store/src/service.rs", bare).len(), 1, "no reason");
    }

    #[test]
    fn relaxed_needs_justification() {
        let src = "fn f(c: &AtomicU64) -> u64 { c.load(Ordering::Relaxed) }";
        let f = scan("crates/rdf/src/any.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, RELAXED);
        let ok = "fn f(c: &AtomicU64) -> u64 {\n    // relaxed-ok: monotonic counter\n    c.load(Ordering::Relaxed)\n}";
        assert!(scan("crates/rdf/src/any.rs", ok).is_empty());
    }

    #[test]
    fn two_snapshots_in_one_fn_flagged() {
        let src = r#"
            fn plan_then_run(&self) {
                let plan = self.read_snapshot();
                let out = self.read_snapshot();
            }
            fn fine(&self) {
                let snap = self.read_snapshot();
            }
        "#;
        let f = scan("crates/core/src/engine.rs", src);
        assert_eq!(f.iter().filter(|f| f.lint == ONE_SNAPSHOT).count(), 1);
        assert_eq!(f[0].line, 4, "reported at the second acquisition");
    }

    #[test]
    fn snapshot_declarations_are_not_acquisitions() {
        let src = r#"
            fn read_snapshot(&self) -> Snap { self.snapshot() }
        "#;
        assert!(scan("crates/core/src/engine.rs", src).is_empty());
    }

    #[test]
    fn lock_reentry_direct_and_via_method() {
        let src = r#"
            impl S {
                fn epoch(&self) -> u64 { self.inner.read().epoch }
                fn bad_direct(&self) {
                    let mut g = self.inner.write();
                    let x = self.inner.read();
                }
                fn bad_via_method(&self) {
                    let mut g = self.inner.write();
                    let e = self.epoch();
                }
                fn fine_after_drop(&self) {
                    let mut g = self.inner.write();
                    drop(g);
                    let e = self.epoch();
                }
                fn fine_statement_scope(&self) {
                    *self.inner.write() = 1;
                    let e = self.epoch();
                }
            }
        "#;
        let f = scan("store/src/service.rs", src);
        let reentries: Vec<_> = f.iter().filter(|f| f.lint == LOCK_REENTRY).collect();
        assert_eq!(reentries.len(), 2, "{reentries:?}");
        assert_eq!(reentries[0].line, 6);
        assert_eq!(reentries[1].line, 10);
    }

    #[test]
    fn transitive_lock_sets_propagate() {
        let src = r#"
            impl S {
                fn snapshot(&self) -> u64 { self.inner.read().epoch }
                fn stats(&self) -> u64 { self.snapshot() }
                fn bad(&self) {
                    let mut g = self.inner.write();
                    let s = self.stats();
                }
            }
        "#;
        let f = scan("store/src/service.rs", src);
        assert_eq!(f.iter().filter(|f| f.lint == LOCK_REENTRY).count(), 1);
    }

    #[test]
    fn wcoj_recycle_enforces_the_buffer_conservation_law() {
        // The real open()/up() shape: every pop matched by the opposite
        // push — clean.
        let ok = r#"
            fn open(&mut self) {
                let sub = self.spare.pop().unwrap_or_default();
                self.stack.push(std::mem::replace(&mut self.runs, sub));
            }
            fn up(&mut self) {
                let parent = self.stack.pop().expect("up without open");
                self.spare.push(std::mem::replace(&mut self.runs, parent));
            }
        "#;
        assert!(scan("crates/store/src/wcoj.rs", ok).is_empty());
        // A popped buffer that never returns to the pool leaks.
        let leak = r#"
            fn up(&mut self) {
                let parent = self.stack.pop().expect("up without open");
                self.runs = parent;
            }
        "#;
        let f = scan("crates/store/src/wcoj.rs", leak);
        assert_eq!(f.iter().filter(|f| f.lint == WCOJ_RECYCLE).count(), 1);
        assert_eq!(f[0].line, 3);
        // An early return between the take and the give leaks too.
        let bail = r#"
            fn open(&mut self, empty: bool) {
                let sub = self.spare.pop().unwrap_or_default();
                if empty {
                    return;
                }
                self.stack.push(std::mem::replace(&mut self.runs, sub));
            }
        "#;
        let f = scan("crates/store/src/wcoj.rs", bail);
        assert_eq!(f.iter().filter(|f| f.lint == WCOJ_RECYCLE).count(), 1);
        assert_eq!(f[0].line, 5, "reported at the leaking exit");
        // The hatch silences it, with a reason.
        let hatched = r#"
            fn into_parent(&mut self) -> Vec<u32> {
                // analyzer-allow: wcoj-buffer-recycle the caller owns the
                // buffer and recycles it itself
                self.stack.pop().expect("into_parent without open")
            }
        "#;
        assert!(scan("crates/store/src/wcoj.rs", hatched).is_empty());
        // Out-of-scope files are not checked.
        assert!(scan("crates/store/src/service.rs", leak)
            .iter()
            .all(|f| f.lint != WCOJ_RECYCLE));
        // Unmatched pushes (a fresh buffer entering the cycle) are fine.
        let fresh = r#"
            fn seed(&mut self, runs: Vec<u32>) {
                self.stack.push(runs);
            }
        "#;
        assert!(scan("crates/store/src/wcoj.rs", fresh).is_empty());
    }

    #[test]
    fn budget_checkpoint_required_in_streaming_hot_paths() {
        // A checkpointed pull loop and a `while let` whose body checks
        // through a receiver are both clean.
        let ok = r#"
            fn pull(&mut self) -> Result<Option<u32>, ExecError> {
                loop {
                    self.budget.check()?;
                    if self.done() { return Ok(None); }
                }
            }
            fn drain(&mut self, budget: &QueryBudget) -> Result<(), ExecError> {
                while let Some(x) = self.next() {
                    budget.check()?;
                }
                Ok(())
            }
        "#;
        assert!(scan("crates/store/src/join.rs", ok)
            .iter()
            .all(|f| f.lint != BUDGET_CHECKPOINT));
        // A bare loop and a bare while are each one finding.
        let bare = r#"
            fn spin(&mut self) {
                loop {
                    if self.done() { break; }
                }
                while self.more() {
                    self.step();
                }
            }
        "#;
        let f = scan("crates/store/src/shard.rs", bare);
        let hits: Vec<_> = f.iter().filter(|f| f.lint == BUDGET_CHECKPOINT).collect();
        assert_eq!(hits.len(), 2, "{hits:?}");
        assert_eq!(hits[0].line, 3);
        assert_eq!(hits[1].line, 6);
        // The hatch silences it, with a reason; test code is out of scope.
        let hatched = r#"
            fn order(&self) {
                // analyzer-allow: budget-checkpoint planning-time loop,
                // bounded by the query size
                while self.more() {
                    self.step();
                }
            }
            #[cfg(test)]
            mod tests {
                fn t() { loop { break; } }
            }
        "#;
        assert!(scan("crates/store/src/wcoj.rs", hatched)
            .iter()
            .all(|f| f.lint != BUDGET_CHECKPOINT));
        // Files outside the streaming hot paths are not checked.
        assert!(scan("crates/store/src/service.rs", bare)
            .iter()
            .all(|f| f.lint != BUDGET_CHECKPOINT));
    }

    fn scan_pair(a: (&str, &str), b: (&str, &str)) -> Vec<Finding> {
        scan_sources(
            &[
                (a.0.to_string(), a.1.to_string()),
                (b.0.to_string(), b.1.to_string()),
            ],
            &Config::default(),
        )
    }

    const SHARD_SIDE: &str = r#"
        impl Shard {
            fn routing_epoch(&self) -> u64 { self.routing.read().epoch }
            fn rebalance(&self) {
                let g = self.routing.write();
                self.cache.purge_slots();
            }
        }
    "#;

    #[test]
    fn lock_order_cycle_detected_across_files() {
        // shard holds `routing` then enters cache (`slots`); cache
        // holds `slots` then enters shard (`routing`): a cross-file
        // ABBA no single-file analysis can see.
        let cache_cyclic = r#"
            impl Cache {
                fn purge_slots(&self) { let g = self.slots.lock(); }
                fn refill(&self) {
                    let g = self.slots.lock();
                    let e = self.shard.routing_epoch();
                }
            }
        "#;
        let f = scan_pair(
            ("store/src/shard.rs", SHARD_SIDE),
            ("store/src/cache.rs", cache_cyclic),
        );
        let cycles: Vec<_> = f.iter().filter(|f| f.lint == LOCK_ORDER).collect();
        assert_eq!(cycles.len(), 1, "{f:#?}");
        assert_eq!(
            cycles[0].file, "store/src/cache.rs",
            "reported at the smallest lock's edge"
        );
        assert!(
            cycles[0].message.contains("cache.slots"),
            "{}",
            cycles[0].message
        );
        assert!(
            cycles[0].message.contains("shard.routing"),
            "{}",
            cycles[0].message
        );

        // Dropping the back edge leaves a DAG: clean.
        let cache_dag = r#"
            impl Cache {
                fn purge_slots(&self) { let g = self.slots.lock(); }
            }
        "#;
        let f = scan_pair(
            ("store/src/shard.rs", SHARD_SIDE),
            ("store/src/cache.rs", cache_dag),
        );
        assert!(f.iter().all(|f| f.lint != LOCK_ORDER), "{f:#?}");
    }

    #[test]
    fn lock_order_cycle_is_hatchable_at_the_reported_edge() {
        let cache_hatched = r#"
            impl Cache {
                fn purge_slots(&self) { let g = self.slots.lock(); }
                fn refill(&self) {
                    let g = self.slots.lock();
                    // analyzer-allow: lock-order-cycle the shard side
                    // never runs concurrently with refill (startup only)
                    let e = self.shard.routing_epoch();
                }
            }
        "#;
        let f = scan_pair(
            ("store/src/shard.rs", SHARD_SIDE),
            ("store/src/cache.rs", cache_hatched),
        );
        assert!(
            f.iter()
                .all(|f| f.lint != LOCK_ORDER && f.lint != UNUSED_HATCH),
            "hatched and the hatch counts as used: {f:#?}"
        );
    }

    #[test]
    fn io_ordering_requires_a_sync_before_publish() {
        let bad = r#"
            fn publish_segment(&self, dir: &Dir) -> io::Result<()> {
                self.file.write_all(&self.bytes)?;
                dir.rename("seg.tmp", "seg-1")
            }
        "#;
        let f = scan_source("store/src/persist.rs", bad, &Config::default());
        assert_eq!(
            f.iter().filter(|f| f.lint == IO_ORDERING).count(),
            1,
            "{f:#?}"
        );
        assert_eq!(f[0].line, 4);

        let good = r#"
            fn publish_segment(&self, dir: &Dir) -> io::Result<()> {
                self.file.write_all(&self.bytes)?;
                self.file.sync_all()?;
                dir.rename("seg.tmp", "seg-1")?;
                dir.dir_sync()
            }
        "#;
        assert!(scan_source("store/src/persist.rs", good, &Config::default()).is_empty());

        // Out-of-scope files are not checked.
        assert!(scan_source("store/src/service.rs", bad, &Config::default())
            .iter()
            .all(|f| f.lint != IO_ORDERING));
    }

    #[test]
    fn stale_hatches_are_warnings() {
        // The unwrap this hatch once excused is gone: the hatch is
        // stale and must be reported — as a warning, not an error.
        let src = r#"
            fn hot(x: Option<u32>) -> u32 {
                // analyzer-allow: no-unwrap-in-service the caller checked is_some
                x.unwrap_or(0)
            }
        "#;
        let f = scan("store/src/service.rs", src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].lint, UNUSED_HATCH);
        assert_eq!(f[0].severity, Severity::Warning);
        assert_eq!(f[0].line, 3);
        assert!(
            f[0].message.contains("no-unwrap-in-service"),
            "{}",
            f[0].message
        );
        assert!(f[0].to_string().contains("warning:"), "{}", f[0]);

        // A consulted hatch is not stale — even in the same file as a
        // stale one.
        let mixed = r#"
            fn hot(x: Option<u32>) -> u32 {
                // analyzer-allow: no-unwrap-in-service the caller checked is_some
                x.unwrap()
            }
            fn cold(y: u32) -> u32 {
                // analyzer-allow: budget-checkpoint nothing loops here anymore
                y + 1
            }
        "#;
        let f = scan("store/src/service.rs", mixed);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].lint, UNUSED_HATCH);
        assert_eq!(f[0].line, 7);

        // Hatches in test code are out of scope, like the lints.
        let in_tests = r#"
            #[cfg(test)]
            mod tests {
                fn t(x: Option<u32>) -> u32 {
                    // analyzer-allow: no-unwrap-in-service leftover
                    x.unwrap_or(0)
                }
            }
        "#;
        assert!(scan("store/src/service.rs", in_tests).is_empty());
    }

    #[test]
    fn must_use_suffixes_enforced() {
        let src = r#"
            pub struct FooSnapshot { x: u32 }
            #[must_use = "holds the pin"]
            pub struct BarGuard;
            #[derive(Clone)]
            #[must_use]
            pub struct BazPlannedQuery;
            pub struct Unrelated;
        "#;
        let f = scan("crates/x/src/lib.rs", src);
        assert_eq!(f.iter().filter(|f| f.lint == MUST_USE).count(), 1);
        assert!(f[0].message.contains("FooSnapshot"));
    }
}
