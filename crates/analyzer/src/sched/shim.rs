//! Scheduler-aware stand-ins for the sync primitives the store uses:
//! `Mutex`/`RwLock` (vendored parking_lot API: no poisoning, guards
//! from `lock()`/`read()`/`write()` directly), `AtomicU64`, `OnceLock`,
//! and `spawn`/`JoinHandle`. Each visible operation calls back into the
//! run's [`Controller`] at a yield point, so the explorer owns every
//! interleaving decision.
//!
//! Two deliberate approximations, documented for model authors:
//!
//! * Atomic `Ordering` arguments are accepted for API compatibility
//!   but explored as `SeqCst` — the explorer enumerates thread
//!   interleavings, not memory-model reorderings. A `Relaxed` bug that
//!   is *also* an interleaving bug is found; one that needs observable
//!   reordering is not.
//! * Guard *release* is not a separate yield point; it takes effect
//!   atomically with the releasing thread's current slice. Waiters
//!   observe it at their next scheduling, which preserves all
//!   distinguishable outcomes for blocking primitives.

use super::{Controller, LockClean};
use std::cell::RefCell;
use std::ops::{Deref, DerefMut};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::AtomicU64 as StdAtomicU64;
use std::sync::{Arc, Mutex as StdMutex};

pub use std::sync::atomic::Ordering;

thread_local! {
    static CTX: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(ctrl: &Arc<Controller>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(ctrl), tid)));
}

fn ctx() -> (Arc<Controller>, usize) {
    CTX.with(|c| c.borrow().clone())
        .expect("wdsparql_analyzer::sched primitives only work inside Explorer::check")
}

fn try_ctx() -> Option<(Arc<Controller>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Explicit yield point for non-shim state machines — the `fsim`
/// storage ops call this before every operation. Inside
/// [`crate::sched::Explorer::check`] it hands the scheduler an
/// interleaving decision; outside it is a no-op, so the same model code
/// runs under both the crash explorer alone and the combined
/// schedules × crash-points product.
pub fn sched_yield() {
    if let Some((ctrl, tid)) = try_ctx() {
        ctrl.yield_point(tid);
    }
}

// ---------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------

pub struct Mutex<T> {
    id: u64,
    locked: StdMutex<bool>,
    // Actual storage. Never contended: the controller serializes all
    // model threads, so this lock always succeeds immediately.
    data: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        let (ctrl, _) = ctx();
        Mutex {
            id: ctrl.fresh_id(),
            locked: StdMutex::new(false),
            data: StdMutex::new(value),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        loop {
            {
                let mut locked = self.locked.lock_clean();
                if !*locked {
                    *locked = true;
                    break;
                }
            }
            ctrl.block_on(tid, self.id);
        }
        MutexGuard {
            owner: self,
            inner: Some(self.data.lock_clean()),
        }
    }
}

#[must_use = "dropping the guard immediately releases the model lock"]
pub struct MutexGuard<'a, T> {
    owner: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds data until drop")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        *self.owner.locked.lock_clean() = false;
        // No panics here: guard drops run during violation unwinding.
        if let Some((ctrl, _)) = try_ctx() {
            ctrl.unblock(self.owner.id);
        }
    }
}

// ---------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------

#[derive(Default)]
struct RwState {
    writer: bool,
    readers: usize,
}

pub struct RwLock<T> {
    id: u64,
    state: StdMutex<RwState>,
    data: StdMutex<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        let (ctrl, _) = ctx();
        RwLock {
            id: ctrl.fresh_id(),
            state: StdMutex::new(RwState::default()),
            data: StdMutex::new(value),
        }
    }

    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        loop {
            {
                let mut st = self.state.lock_clean();
                if !st.writer {
                    st.readers += 1;
                    break;
                }
            }
            ctrl.block_on(tid, self.id);
        }
        RwLockReadGuard {
            owner: self,
            inner: Some(self.data.lock_clean()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        loop {
            {
                let mut st = self.state.lock_clean();
                if !st.writer && st.readers == 0 {
                    st.writer = true;
                    break;
                }
            }
            ctrl.block_on(tid, self.id);
        }
        RwLockWriteGuard {
            owner: self,
            inner: Some(self.data.lock_clean()),
        }
    }
}

#[must_use = "dropping the guard immediately releases the model read lock"]
pub struct RwLockReadGuard<'a, T> {
    owner: &'a RwLock<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds data until drop")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        let mut st = self.owner.state.lock_clean();
        st.readers = st.readers.saturating_sub(1);
        let wake = st.readers == 0;
        drop(st);
        if wake {
            if let Some((ctrl, _)) = try_ctx() {
                ctrl.unblock(self.owner.id);
            }
        }
    }
}

#[must_use = "dropping the guard immediately releases the model write lock"]
pub struct RwLockWriteGuard<'a, T> {
    owner: &'a RwLock<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds data until drop")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds data until drop")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        self.owner.state.lock_clean().writer = false;
        if let Some((ctrl, _)) = try_ctx() {
            ctrl.unblock(self.owner.id);
        }
    }
}

// ---------------------------------------------------------------------
// AtomicU64
// ---------------------------------------------------------------------

pub struct AtomicU64 {
    v: StdAtomicU64,
}

impl AtomicU64 {
    pub const fn new(value: u64) -> AtomicU64 {
        AtomicU64 {
            v: StdAtomicU64::new(value),
        }
    }

    pub fn load(&self, _order: Ordering) -> u64 {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        self.v.load(Ordering::SeqCst)
    }

    pub fn store(&self, value: u64, _order: Ordering) {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        self.v.store(value, Ordering::SeqCst);
    }

    pub fn fetch_add(&self, value: u64, _order: Ordering) -> u64 {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        self.v.fetch_add(value, Ordering::SeqCst)
    }

    pub fn compare_exchange(
        &self,
        current: u64,
        new: u64,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<u64, u64> {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        self.v
            .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }
}

// ---------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------

#[derive(Clone, Copy, PartialEq, Eq)]
enum OnceState {
    Empty,
    Initializing,
    Ready,
}

pub struct OnceLock<T> {
    id: u64,
    state: StdMutex<OnceState>,
    cell: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    #[allow(clippy::new_without_default)] // mirror std's inherent-new API shape
    pub fn new() -> OnceLock<T> {
        let (ctrl, _) = ctx();
        OnceLock {
            id: ctrl.fresh_id(),
            state: StdMutex::new(OnceState::Empty),
            cell: std::sync::OnceLock::new(),
        }
    }

    pub fn get(&self) -> Option<&T> {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        (*self.state.lock_clean() == OnceState::Ready)
            .then(|| self.cell.get().expect("Ready implies the cell is set"))
    }

    pub fn set(&self, value: T) -> Result<(), T> {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        let mut st = self.state.lock_clean();
        match *st {
            OnceState::Ready | OnceState::Initializing => Err(value),
            OnceState::Empty => {
                *st = OnceState::Ready;
                drop(st);
                let _ = self.cell.set(value);
                ctrl.unblock(self.id);
                Ok(())
            }
        }
    }

    /// Blocks until some thread publishes a value (std's `wait`).
    pub fn wait(&self) -> &T {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        loop {
            if *self.state.lock_clean() == OnceState::Ready {
                return self.cell.get().expect("Ready implies the cell is set");
            }
            ctrl.block_on(tid, self.id);
        }
    }

    /// One thread runs `f` (with no internal lock held, so `f` may use
    /// other shims); latecomers block until the value is published.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        let mut init = Some(f);
        loop {
            {
                let mut st = self.state.lock_clean();
                match *st {
                    OnceState::Ready => {
                        return self.cell.get().expect("Ready implies the cell is set");
                    }
                    OnceState::Empty => {
                        *st = OnceState::Initializing;
                        drop(st);
                        let value = (init.take().expect("initializer runs once"))();
                        *self.state.lock_clean() = OnceState::Ready;
                        let _ = self.cell.set(value);
                        ctrl.unblock(self.id);
                        return self.cell.get().expect("just set");
                    }
                    OnceState::Initializing => {}
                }
            }
            ctrl.block_on(tid, self.id);
        }
    }
}

// ---------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------

pub struct JoinHandle<T> {
    tid: usize,
    exit_id: u64,
    result: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes, then returns its value. If the
    /// joined thread panicked the run is already aborting and this
    /// unwinds with the abort sentinel instead of returning.
    pub fn join(self) -> T {
        let (ctrl, tid) = ctx();
        ctrl.yield_point(tid);
        while !ctrl.is_finished(self.tid) {
            ctrl.block_on(tid, self.exit_id);
        }
        ctrl.check_abort();
        self.result
            .lock_clean()
            .take()
            .expect("finished model thread left no result")
    }
}

pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (ctrl, tid) = ctx();
    ctrl.yield_point(tid);
    let (child, exit_id) = ctrl.register_thread();
    let result = Arc::new(StdMutex::new(None));
    let r2 = Arc::clone(&result);
    let c2 = Arc::clone(&ctrl);
    let os = std::thread::Builder::new()
        .name(format!("sched-model-{child}"))
        .spawn(move || {
            set_ctx(&c2, child);
            if c2.wait_until_scheduled(child) {
                match panic::catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        *r2.lock_clean() = Some(v);
                        c2.thread_done(child, None);
                    }
                    Err(p) => c2.thread_done(child, Some(p)),
                }
            } else {
                c2.thread_done(child, None);
            }
        })
        .expect("failed to spawn model OS thread");
    ctrl.push_handle(os);
    JoinHandle {
        tid: child,
        exit_id,
        result,
    }
}
