//! Deterministic-schedule exploration for store concurrency protocols.
//!
//! Loom/shuttle-style model checking, vendored-stand-in style: model
//! code uses the [`shim`] primitives (`Mutex`, `RwLock`, `AtomicU64`,
//! `OnceLock`, `spawn`/`join`) instead of the real ones. Each primitive
//! op is a *yield point* where a cooperative scheduler decides which
//! model thread runs next; [`Explorer::check`] re-runs the model under
//! every schedule reachable within a preemption bound, depth-first,
//! replaying decision prefixes to enumerate alternatives.
//!
//! Model threads are real OS threads serialized by a mutex+condvar
//! controller, so the model code is ordinary Rust — no generators, no
//! unsafe. Code between two yield points executes atomically from the
//! model's point of view; since every cross-thread observation in the
//! shims is itself a yield point, this coarsening loses no
//! distinguishable interleavings.
//!
//! A panic in any model thread (an `assert!` firing) is a violation:
//! the explorer aborts the run, unwinds the other threads with a
//! sentinel panic, and reports the failing schedule as a trace of
//! thread ids. Deadlock (every live thread blocked) and runaway op
//! budgets are violations too.

pub mod shim;

pub use shim::{spawn, AtomicU64, JoinHandle, Mutex, OnceLock, Ordering, RwLock};

use std::any::Any;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};
use std::thread;

/// Sentinel panic payload used to unwind parked model threads when a
/// run aborts. Never reported as a failure itself.
pub(crate) struct AbortRun;

/// A schedule under which the model failed.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The panic/deadlock message from the failing run.
    pub message: String,
    /// Thread id chosen at each scheduling decision of the failing run.
    pub trace: Vec<usize>,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule: usize,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "violation on schedule #{}: {} (thread trace {:?})",
            self.schedule, self.message, self.trace
        )
    }
}

/// Summary of a completed exploration with no violation.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub schedules: usize,
    /// True when the whole bounded schedule space was covered; false
    /// when the run stopped at `max_schedules`.
    pub exhausted: bool,
}

/// Bounded-DFS schedule explorer.
pub struct Explorer {
    /// Max voluntary context switches away from a runnable thread per
    /// schedule. Switches off a blocked/finished thread are free.
    pub preemption_bound: usize,
    /// Safety valve on the number of schedules.
    pub max_schedules: usize,
    /// Safety valve on yield points per schedule (livelock guard).
    pub max_ops: usize,
}

impl Explorer {
    pub fn new(preemption_bound: usize) -> Explorer {
        Explorer {
            preemption_bound,
            max_schedules: 100_000,
            max_ops: 10_000,
        }
    }

    /// Runs `model` under every schedule within the bound (depth-first
    /// over scheduling decisions), until a violation, exhaustion, or
    /// the schedule cap.
    pub fn check<F>(&self, model: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_quiet_hook();
        let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
        let mut replay: Vec<usize> = Vec::new();
        let mut schedules = 0usize;
        loop {
            let outcome = self.run_one(Arc::clone(&model), &replay);
            schedules += 1;
            if let Some(message) = outcome.failure {
                return Err(Violation {
                    message,
                    trace: outcome.trace,
                    schedule: schedules,
                });
            }
            if schedules >= self.max_schedules {
                return Ok(Report {
                    schedules,
                    exhausted: false,
                });
            }
            // Backtrack: deepest decision with an untried alternative.
            let mut prefix: Vec<(usize, usize)> = outcome
                .decisions
                .iter()
                .map(|d| (d.chosen, d.alternatives.len()))
                .collect();
            let mut advanced = false;
            while let Some((chosen, n)) = prefix.pop() {
                if chosen + 1 < n {
                    prefix.push((chosen + 1, n));
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return Ok(Report {
                    schedules,
                    exhausted: true,
                });
            }
            replay = prefix.iter().map(|&(c, _)| c).collect();
        }
    }

    fn run_one(&self, model: Arc<dyn Fn() + Send + Sync>, replay: &[usize]) -> Outcome {
        let ctrl = Arc::new(Controller::new(
            self.preemption_bound,
            self.max_ops,
            replay.to_vec(),
        ));
        let (root, _exit) = ctrl.register_thread();
        debug_assert_eq!(root, 0);
        let c2 = Arc::clone(&ctrl);
        let os = thread::Builder::new()
            .name("sched-model-0".to_string())
            .spawn(move || {
                shim::set_ctx(&c2, 0);
                if c2.wait_until_scheduled(0) {
                    let out = panic::catch_unwind(AssertUnwindSafe(|| model()));
                    c2.thread_done(0, out.err());
                } else {
                    c2.thread_done(0, None);
                }
            })
            .expect("failed to spawn model root thread");
        ctrl.push_handle(os);
        ctrl.wait_all_finished();
        loop {
            let next = ctrl.handles.lock_clean().pop();
            match next {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
        ctrl.take_outcome()
    }
}

struct Outcome {
    decisions: Vec<Decision>,
    trace: Vec<usize>,
    failure: Option<String>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    /// Waiting for the given resource id to be released/published.
    Blocked(u64),
    Finished,
}

struct Decision {
    alternatives: Vec<usize>,
    chosen: usize,
}

struct RunState {
    threads: Vec<Status>,
    exit_ids: Vec<u64>,
    current: usize,
    replay: Vec<usize>,
    decisions: Vec<Decision>,
    trace: Vec<usize>,
    preemptions: usize,
    ops: usize,
    failure: Option<String>,
    abort: bool,
}

/// Serializes the model threads and records/replays scheduling
/// decisions for one run.
pub(crate) struct Controller {
    state: StdMutex<RunState>,
    cv: Condvar,
    preemption_bound: usize,
    max_ops: usize,
    next_id: StdAtomicU64,
    handles: StdMutex<Vec<thread::JoinHandle<()>>>,
}

/// Poison-tolerant locking: model threads unwind on purpose (violation
/// teardown), and the state must stay readable through that.
pub(crate) trait LockClean<T> {
    fn lock_clean(&self) -> StdMutexGuard<'_, T>;
}

impl<T> LockClean<T> for StdMutex<T> {
    fn lock_clean(&self) -> StdMutexGuard<'_, T> {
        self.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl Controller {
    fn new(preemption_bound: usize, max_ops: usize, replay: Vec<usize>) -> Controller {
        Controller {
            state: StdMutex::new(RunState {
                threads: Vec::new(),
                exit_ids: Vec::new(),
                current: 0,
                replay,
                decisions: Vec::new(),
                trace: Vec::new(),
                preemptions: 0,
                ops: 0,
                failure: None,
                abort: false,
            }),
            cv: Condvar::new(),
            preemption_bound,
            max_ops,
            next_id: StdAtomicU64::new(0),
            handles: StdMutex::new(Vec::new()),
        }
    }

    pub(crate) fn fresh_id(&self) -> u64 {
        self.next_id.fetch_add(1, StdOrdering::SeqCst)
    }

    pub(crate) fn register_thread(&self) -> (usize, u64) {
        let exit = self.fresh_id();
        let mut st = self.state.lock_clean();
        let tid = st.threads.len();
        st.threads.push(Status::Runnable);
        st.exit_ids.push(exit);
        (tid, exit)
    }

    pub(crate) fn push_handle(&self, h: thread::JoinHandle<()>) {
        self.handles.lock_clean().push(h);
    }

    /// A scheduling decision point: the calling (current) thread offers
    /// to hand off, then waits until it is scheduled again.
    pub(crate) fn yield_point(&self, tid: usize) {
        let mut st = self.state.lock_clean();
        self.charge_op(&mut st);
        self.schedule(&mut st);
        self.wait_my_turn(st, tid);
    }

    /// Marks the calling thread blocked on `resource` and hands off.
    /// Returns when some release makes it runnable *and* the scheduler
    /// picks it.
    pub(crate) fn block_on(&self, tid: usize, resource: u64) {
        let mut st = self.state.lock_clean();
        self.charge_op(&mut st);
        st.threads[tid] = Status::Blocked(resource);
        self.schedule(&mut st);
        self.wait_my_turn(st, tid);
    }

    /// Flips every thread blocked on `resource` back to runnable. They
    /// still wait for the scheduler to pick them.
    pub(crate) fn unblock(&self, resource: u64) {
        let mut st = self.state.lock_clean();
        for s in st.threads.iter_mut() {
            if *s == Status::Blocked(resource) {
                *s = Status::Runnable;
            }
        }
    }

    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        self.state.lock_clean().threads[tid] == Status::Finished
    }

    pub(crate) fn check_abort(&self) {
        if self.state.lock_clean().abort {
            panic::panic_any(AbortRun);
        }
    }

    /// First wait of a freshly spawned thread. False means the run
    /// aborted before the thread was ever scheduled (skip the body).
    pub(crate) fn wait_until_scheduled(&self, tid: usize) -> bool {
        let mut st = self.state.lock_clean();
        while !st.abort && st.current != tid {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        !st.abort
    }

    /// Terminal protocol for a model thread: record any panic as a
    /// violation (except the abort sentinel), wake joiners, hand off.
    pub(crate) fn thread_done(&self, tid: usize, payload: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock_clean();
        if let Some(p) = payload {
            if !p.is::<AbortRun>() {
                let msg = panic_message(&p);
                self.fail(&mut st, format!("model thread {tid} panicked: {msg}"));
            }
        }
        st.threads[tid] = Status::Finished;
        let exit = st.exit_ids[tid];
        for s in st.threads.iter_mut() {
            if *s == Status::Blocked(exit) {
                *s = Status::Runnable;
            }
        }
        if !st.abort && st.threads.iter().any(|s| *s != Status::Finished) {
            self.schedule(&mut st);
        }
        self.cv.notify_all();
    }

    fn wait_all_finished(&self) {
        let mut st = self.state.lock_clean();
        while !st.threads.iter().all(|s| *s == Status::Finished) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_outcome(&self) -> Outcome {
        let mut st = self.state.lock_clean();
        Outcome {
            decisions: std::mem::take(&mut st.decisions),
            trace: std::mem::take(&mut st.trace),
            failure: st.failure.take(),
        }
    }

    fn charge_op(&self, st: &mut RunState) {
        if st.abort {
            panic::panic_any(AbortRun);
        }
        st.ops += 1;
        if st.ops > self.max_ops {
            self.fail(
                st,
                format!(
                    "operation budget exceeded ({} yields): runaway or livelocked model",
                    self.max_ops
                ),
            );
            panic::panic_any(AbortRun);
        }
    }

    /// Picks the next thread to run. Replays the prescribed decision
    /// while the replay prefix lasts, otherwise defaults to index 0 —
    /// which keeps the current thread running when it can (so the
    /// default path costs zero preemptions, and every index > 0 while
    /// the current thread is runnable is a preemption).
    fn schedule(&self, st: &mut RunState) {
        if st.abort {
            return;
        }
        let cur = st.current;
        let cur_runnable = st.threads.get(cur) == Some(&Status::Runnable);
        let mut alts = Vec::new();
        if cur_runnable {
            alts.push(cur);
        }
        if !(cur_runnable && st.preemptions >= self.preemption_bound) {
            for t in 0..st.threads.len() {
                if t != cur && st.threads[t] == Status::Runnable {
                    alts.push(t);
                }
            }
        }
        if alts.is_empty() {
            if st.threads.iter().any(|s| matches!(s, Status::Blocked(_))) {
                let blocked: Vec<usize> = st
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| matches!(s, Status::Blocked(_)))
                    .map(|(t, _)| t)
                    .collect();
                self.fail(
                    st,
                    format!("deadlock: every live thread is blocked (threads {blocked:?})"),
                );
            }
            self.cv.notify_all();
            return;
        }
        let idx = st.decisions.len();
        let chosen = st.replay.get(idx).copied().unwrap_or(0).min(alts.len() - 1);
        let next = alts[chosen];
        st.decisions.push(Decision {
            alternatives: alts,
            chosen,
        });
        st.trace.push(next);
        if cur_runnable && next != cur {
            st.preemptions += 1;
        }
        st.current = next;
        self.cv.notify_all();
    }

    fn wait_my_turn(&self, mut st: StdMutexGuard<'_, RunState>, tid: usize) {
        while !st.abort && st.current != tid {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.abort {
            drop(st);
            panic::panic_any(AbortRun);
        }
    }

    fn fail(&self, st: &mut RunState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        self.cv.notify_all();
    }
}

fn panic_message(p: &Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Model threads panic on purpose (that is how violations surface);
/// silence the default hook's backtrace spew for them, once, globally.
/// Keyed on the thread name so unrelated test threads keep the default.
fn install_quiet_hook() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let quiet = thread::current()
                .name()
                .is_some_and(|n| n.starts_with("sched-model"));
            if !quiet {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_load_store_loses_updates() {
        let found = Explorer::new(2).check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let hs: Vec<JoinHandle<()>> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&c);
                    spawn(move || {
                        let v = c.load(Ordering::SeqCst);
                        c.store(v + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in hs {
                h.join();
            }
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        });
        let v = found.expect_err("the read-modify-write race must be found");
        assert!(v.message.contains("lost update"), "{v}");
    }

    #[test]
    fn fetch_add_is_clean_and_exhausts() {
        let report = Explorer::new(2)
            .check(|| {
                let c = Arc::new(AtomicU64::new(0));
                let hs: Vec<JoinHandle<()>> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&c);
                        spawn(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for h in hs {
                    h.join();
                }
                assert_eq!(c.load(Ordering::SeqCst), 2);
            })
            .expect("atomic increment has no violation");
        assert!(report.exhausted, "bounded space should exhaust: {report:?}");
        assert!(report.schedules > 1, "more than one interleaving explored");
    }

    #[test]
    fn abba_deadlock_detected() {
        let found = Explorer::new(2).check(|| {
            let a = Arc::new(Mutex::new(0u32));
            let b = Arc::new(Mutex::new(0u32));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            {
                let _gb = b.lock();
                let _ga = a.lock();
            }
            h.join();
        });
        let v = found.expect_err("ABBA ordering must deadlock under some schedule");
        assert!(v.message.contains("deadlock"), "{v}");
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let report = Explorer::new(2)
            .check(|| {
                let l = Arc::new(RwLock::new(7u64));
                let l2 = Arc::clone(&l);
                let h = spawn(move || *l2.read());
                let mine = *l.read();
                assert_eq!(h.join(), 7);
                assert_eq!(mine, 7);
            })
            .expect("two readers never conflict");
        assert!(report.exhausted);
    }

    #[test]
    fn once_lock_wait_sees_the_set_value() {
        let report = Explorer::new(2)
            .check(|| {
                let o = Arc::new(OnceLock::new());
                let o2 = Arc::clone(&o);
                let h = spawn(move || *o2.wait());
                let _ = o.set(42u64);
                assert_eq!(h.join(), 42);
            })
            .expect("wait-after-set protocol is clean");
        assert!(report.exhausted);
    }
}
