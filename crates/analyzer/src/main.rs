//! `wdsparql-analyzer` — run the invariant lints over a source tree.
//!
//! ```text
//! wdsparql-analyzer [--check] [--strict-hatches] [--json <path>] [ROOT]
//! ```
//!
//! With no `ROOT`, the workspace containing this crate is scanned.
//! `--check` makes errors fatal (exit 1); without it the run is
//! informational and always exits 0. Warnings (`unused-hatch`) never
//! fail `--check` unless `--strict-hatches` promotes them. `--json
//! <path>` additionally writes the findings as a machine-readable
//! report whose shape is pinned by `crates/analyzer/report-schema.json`
//! (`schema` field, versioned — CI validates every report against it).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;
use wdsparql_analyzer::lints::{self, Config, Finding, Severity};

/// Version of the JSON report shape; bump together with
/// `report-schema.json`.
const REPORT_SCHEMA: u32 = 1;

fn main() -> ExitCode {
    let mut check = false;
    let mut strict_hatches = false;
    let mut json_path: Option<PathBuf> = None;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--strict-hatches" => strict_hatches = true,
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => return usage("--json needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: wdsparql-analyzer [--check] [--strict-hatches] [--json <path>] [ROOT]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && root.is_none() => {
                root = Some(PathBuf::from(other));
            }
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => match workspace_root() {
            Some(r) => r,
            None => {
                eprintln!("error: cannot locate the workspace root; pass ROOT explicitly");
                return ExitCode::from(2);
            }
        },
    };
    let findings = match lints::scan_root(&root, &Config::default()) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, render_json(&findings)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }
    let errors = count(&findings, Severity::Error);
    let warnings = count(&findings, Severity::Warning);
    if findings.is_empty() {
        println!("analyzer: clean ({})", root.display());
        ExitCode::SUCCESS
    } else {
        println!(
            "analyzer: {errors} error(s), {warnings} warning(s) in {}",
            root.display()
        );
        if check && (errors > 0 || (strict_hatches && warnings > 0)) {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

fn count(findings: &[Finding], severity: Severity) -> usize {
    findings.iter().filter(|f| f.severity == severity).count()
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: wdsparql-analyzer [--check] [--strict-hatches] [--json <path>] [ROOT]");
    ExitCode::from(2)
}

/// The workspace this binary was built from: two levels up from the
/// crate's manifest, validated by the presence of a `Cargo.toml`.
/// Falls back to the current directory when the build tree has moved.
fn workspace_root() -> Option<PathBuf> {
    let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(ws) = compiled.ancestors().nth(2) {
        if ws.join("Cargo.toml").is_file() {
            return Some(ws.to_path_buf());
        }
    }
    let cwd = std::env::current_dir().ok()?;
    cwd.join("Cargo.toml").is_file().then_some(cwd)
}

/// The versioned JSON report: a `schema` marker, error/warning totals,
/// and the findings. Hand-rolled — the workspace has no serde and the
/// shape is pinned by `report-schema.json`.
fn render_json(findings: &[Finding]) -> String {
    let mut out = format!(
        "{{\n  \"schema\": {REPORT_SCHEMA},\n  \"summary\": {{\"errors\": {}, \"warnings\": {}}},\n  \"findings\": [\n",
        count(findings, Severity::Error),
        count(findings, Severity::Warning)
    );
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"lint\": \"{}\", \"severity\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\"}}{}\n",
            escape(f.lint),
            f.severity.as_str(),
            escape(&f.file),
            f.line,
            escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
