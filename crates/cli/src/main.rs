//! `wdsparql` — a command-line interface to the library.
//!
//! ```text
//! wdsparql analyze  <query>                 width report for a query
//! wdsparql eval     <data.nt> <query>       enumerate all solutions
//! wdsparql check    <data.nt> <query> <µ>   membership, all strategies
//! wdsparql count    <data.nt> <query>       solution counts by domain
//! wdsparql select   <data.nt> <select-q>    projected (SELECT) evaluation
//! wdsparql contain  <query1> <query2>       containment verdicts, both ways
//! wdsparql forest   <query>                 print the wdPF translation
//! wdsparql store    <data.nt> [query]       bulk-load into the triple store,
//!                                           report stats, run the query
//!                                           through the service
//! wdsparql demo                             run a tiny built-in scenario
//! ```
//!
//! `<query>` is a pattern in the paper's syntax, e.g.
//! `"(?x, knows, ?y) OPT (?y, email, ?e)"`, or SPARQL-style curly syntax.
//! `<select-q>` is `"SELECT ?x ?y WHERE { ... }"`. `<µ>` is a
//! comma-separated binding list, e.g. `"x=alice,y=bob"`.

use std::process::ExitCode;
use wdsparql_contain::{decide_containment, SearchBudget, Verdict};
use wdsparql_core::{count_by_domain, enumerate_with_stats, Engine, Query, Strategy};
use wdsparql_project::{enumerate_projected, ProjectedQuery};
use wdsparql_rdf::{parse_ntriples, Mapping};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  wdsparql analyze <query>
  wdsparql eval    <data.nt> <query>
  wdsparql check   <data.nt> <query> <bindings>   (e.g. \"x=alice,y=bob\")
  wdsparql count   <data.nt> <query>
  wdsparql select  <data.nt> <select-query>       (e.g. \"SELECT ?x WHERE { ... }\")
  wdsparql contain <query1> <query2>
  wdsparql forest  <query>
  wdsparql store   <data.nt> [query]
  wdsparql demo";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "analyze" => {
            let query = parse_query(args.get(1))?;
            // Width analysis needs no data; use an empty engine.
            let engine = Engine::new(wdsparql_rdf::RdfGraph::new());
            println!("query: {query}");
            println!("{}", engine.analyze(&query));
            Ok(())
        }
        "forest" => {
            let query = parse_query(args.get(1))?;
            print!("{}", query.forest());
            Ok(())
        }
        "eval" => {
            let graph = load_graph(args.get(1))?;
            let text = args.get(2).ok_or("missing query argument")?;
            let engine = Engine::new(graph);
            // Curly-syntax queries may carry top-level FILTER clauses.
            let sols = if text.trim_start().starts_with('{') {
                let (query, filter) = Query::parse_with_filter(text).map_err(|e| e.to_string())?;
                engine.evaluate_filtered(&query, &filter)
            } else {
                engine.evaluate(&parse_query(args.get(2))?)
            };
            println!("{} solution(s):", sols.len());
            for mu in &sols {
                println!("  {mu}");
            }
            Ok(())
        }
        "check" => {
            let graph = load_graph(args.get(1))?;
            let query = parse_query(args.get(2))?;
            let mu = parse_bindings(args.get(3))?;
            let engine = Engine::new(graph);
            println!("µ = {mu}");
            let reference = engine.check(&query, &mu, Strategy::Naive);
            println!("naive (Lemma 1, exact homomorphisms): {reference}");
            let dw = query.domination_width();
            let pebble = engine.check(&query, &mu, Strategy::Pebble { k: dw });
            println!("pebble (Theorem 1, k = dw = {dw}):      {pebble}");
            if reference != pebble {
                return Err("internal disagreement between strategies (bug)".into());
            }
            Ok(())
        }
        "count" => {
            let graph = load_graph(args.get(1))?;
            let query = parse_query(args.get(2))?;
            let (sols, stats) = enumerate_with_stats(query.forest(), &graph);
            println!("{} solution(s)", sols.len());
            for (domain, count) in count_by_domain(query.forest(), &graph) {
                let names: Vec<String> = domain.iter().map(|v| v.to_string()).collect();
                println!("  {{{}}}: {count}", names.join(", "));
            }
            println!(
                "(work: {} hom calls, {} steps, max delay {} steps)",
                stats.hom_calls, stats.steps, stats.max_delay_steps
            );
            Ok(())
        }
        "select" => {
            let graph = load_graph(args.get(1))?;
            let text = args.get(2).ok_or("missing SELECT query argument")?;
            let query = ProjectedQuery::parse(text).map_err(|e| e.to_string())?;
            println!("query: {query}");
            let sols = enumerate_projected(&query, &graph);
            println!("{} projected solution(s):", sols.len());
            for mu in &sols {
                println!("  {mu}");
            }
            Ok(())
        }
        "contain" => {
            let q1 = parse_query(args.get(1))?;
            let q2 = parse_query(args.get(2))?;
            let budget = SearchBudget::default();
            for (label, a, b) in [("P1 ⊆ P2", &q1, &q2), ("P2 ⊆ P1", &q2, &q1)] {
                match decide_containment(a.forest(), b.forest(), &budget) {
                    Verdict::Contained => println!("{label}: contained (proved)"),
                    Verdict::NotContained(ce) => {
                        println!("{label}: NOT contained; witness µ = {} on:", ce.mu);
                        for t in ce.graph.iter() {
                            println!("    {t}");
                        }
                    }
                    Verdict::Unknown => println!("{label}: unknown (within budget)"),
                }
            }
            Ok(())
        }
        "store" => {
            let graph = load_graph(args.get(1))?;
            let store = std::sync::Arc::new(wdsparql_store::TripleStore::new());
            // Load in batches, as an ingest pipeline would: each batch
            // appends a sorted delta segment; the explicit compact folds
            // whatever the adaptive policy left pending (and builds the
            // PSO permutation). The stats line reports the lifecycle.
            let mut stream = graph.iter().copied();
            loop {
                let batch: Vec<_> = stream.by_ref().take(4096).collect();
                if batch.is_empty() {
                    break;
                }
                store.bulk_load(batch);
            }
            let staged = store.stats();
            store.compact();
            let stats = store.stats();
            println!("{stats}");
            println!(
                "(ingest staged {} delta row(s) in {} segment(s); {} compaction(s) total)",
                staged.delta_rows, staged.segments, stats.compactions
            );
            let Some(text) = args.get(2) else {
                return Ok(());
            };
            let query = Query::parse(text).map_err(|e| e.to_string())?;
            let engine = Engine::from_store(std::sync::Arc::clone(&store));
            let sols = engine.evaluate(&query);
            println!("\nquery: {query}");
            println!("{} solution(s) via the store-backed engine:", sols.len());
            for mu in sols.iter().take(10) {
                println!("  {mu}");
            }
            if sols.len() > 10 {
                println!("  ... ({} more)", sols.len() - 10);
            }
            // AND-only queries additionally go through the service's
            // planned, cached BGP path — plan and solutions from one
            // snapshot; a second run shows the cache.
            if let Some(pats) = bgp_patterns(query.pattern()) {
                let planned = store.query_with_plan(&pats);
                let plan: Vec<String> = planned.plan.iter().map(|&i| pats[i].to_string()).collect();
                println!("service plan (most selective first): {}", plan.join(" ⋈ "));
                let again = store.query(&pats);
                assert_eq!(planned.solutions.len(), again.len());
                let cs = store.cache_stats();
                println!(
                    "service BGP path: {} solution(s) at epoch {}; cache {} hit(s) / {} miss(es)",
                    planned.solutions.len(),
                    planned.epoch,
                    cs.hits,
                    cs.misses
                );
            }
            Ok(())
        }
        "demo" => {
            demo();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The triple patterns of an AND-only (BGP) pattern, `None` when the
/// query uses OPT or UNION.
fn bgp_patterns(p: &wdsparql_core::GraphPattern) -> Option<Vec<wdsparql_rdf::TriplePattern>> {
    use wdsparql_core::GraphPattern;
    match p {
        GraphPattern::Triple(t) => Some(vec![*t]),
        GraphPattern::And(l, r) => {
            let mut out = bgp_patterns(l)?;
            out.extend(bgp_patterns(r)?);
            Some(out)
        }
        GraphPattern::Opt(..) | GraphPattern::Union(..) => None,
    }
}

fn parse_query(arg: Option<&String>) -> Result<Query, String> {
    let text = arg.ok_or("missing query argument")?;
    Query::parse(text).map_err(|e| e.to_string())
}

fn load_graph(arg: Option<&String>) -> Result<wdsparql_rdf::RdfGraph, String> {
    let path = arg.ok_or("missing data file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_ntriples(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_bindings(arg: Option<&String>) -> Result<Mapping, String> {
    let text = arg.ok_or("missing bindings argument")?;
    let mut mu = Mapping::new();
    for part in text.split(',').filter(|s| !s.trim().is_empty()) {
        let (var, val) = part
            .split_once('=')
            .ok_or_else(|| format!("bad binding {part:?} (expected var=iri)"))?;
        mu.bind(
            wdsparql_rdf::Variable::new(var.trim()),
            wdsparql_rdf::Iri::new(val.trim()),
        );
    }
    Ok(mu)
}

fn demo() {
    let graph = wdsparql_workloads::social_network(30, 1);
    let engine = Engine::new(graph);
    let query = Query::parse("((?p, type, Person) OPT (?p, email, ?e)) OPT (?p, city, ?c)")
        .expect("demo query is well-designed");
    println!("demo query: {query}\n");
    println!("{}\n", engine.analyze(&query));
    let sols = engine.evaluate(&query);
    println!("{} solutions; first 5:", sols.len());
    for mu in sols.iter().take(5) {
        println!("  {mu}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn bindings_parse() {
        let mu = parse_bindings(Some(&"x=alice, y=bob".to_string())).unwrap();
        assert_eq!(mu.len(), 2);
        assert_eq!(
            mu.get(wdsparql_rdf::Variable::new("y")),
            Some(wdsparql_rdf::Iri::new("bob"))
        );
        assert!(parse_bindings(Some(&"xalice".to_string())).is_err());
        assert!(parse_bindings(None).is_err());
    }

    #[test]
    fn analyze_and_forest_subcommands() {
        assert!(run(&s(&["analyze", "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["forest", "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["analyze", "(?x, p"])).is_err());
    }

    #[test]
    fn eval_and_check_subcommands() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        assert!(run(&s(&["eval", &p, "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&[
            "check",
            &p,
            "(?x, p, ?y) OPT (?y, q, ?z)",
            "x=a,y=b,z=c"
        ]))
        .is_ok());
        assert!(run(&s(&["eval", "/nonexistent.nt", "(?x, p, ?y)"])).is_err());
        // Curly syntax with a FILTER clause.
        assert!(run(&s(&[
            "eval",
            &p,
            "{ ?x p ?y OPTIONAL { ?y q ?z } FILTER(BOUND(?z)) }",
        ]))
        .is_ok());
    }

    #[test]
    fn count_select_and_contain_subcommands() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\nd p e .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        assert!(run(&s(&["count", &p, "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&[
            "select",
            &p,
            "SELECT ?x WHERE { ?x p ?y OPTIONAL { ?y q ?z } }",
        ]))
        .is_ok());
        assert!(run(&s(&["select", &p, "SELECT ?nope WHERE { ?x p ?y }"])).is_err());
        assert!(run(&s(&[
            "contain",
            "(?x, p, ?y)",
            "(?x, p, ?y) OPT (?y, q, ?z)"
        ]))
        .is_ok());
        assert!(run(&s(&["contain", "(?x, p, ?y)"])).is_err());
    }

    #[test]
    fn store_subcommand_loads_and_queries() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\nd p e .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        assert!(run(&s(&["store", &p])).is_ok());
        assert!(run(&s(&["store", &p, "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["store", &p, "(?x, p, ?y) AND (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["store", "/nonexistent.nt"])).is_err());
        assert!(run(&s(&["store", &p, "(?x, p"])).is_err());
    }

    #[test]
    fn bgp_patterns_accept_and_only_queries() {
        let and = Query::parse("(?x, p, ?y) AND (?y, q, ?z)").unwrap();
        assert_eq!(bgp_patterns(and.pattern()).unwrap().len(), 2);
        let opt = Query::parse("(?x, p, ?y) OPT (?y, q, ?z)").unwrap();
        assert!(bgp_patterns(opt.pattern()).is_none());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }
}
