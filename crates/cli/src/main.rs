//! `wdsparql` — a command-line interface to the library.
//!
//! ```text
//! wdsparql analyze  <query>                 width report for a query
//! wdsparql eval     <data.nt> <query>       enumerate all solutions
//! wdsparql check    <data.nt> <query> <µ>   membership, all strategies
//! wdsparql count    <data.nt> <query>       solution counts by domain
//! wdsparql select   <data.nt> <select-q>    projected (SELECT) evaluation
//! wdsparql contain  <query1> <query2>       containment verdicts, both ways
//! wdsparql forest   <query>                 print the wdPF translation
//! wdsparql store [--shards N] [--max-triples N]
//!                [--join-strategy pairwise|wco|auto]
//!                [--limit K] [--deadline-ms T]
//!                [--profile] [--metrics-json PATH]
//!                [--dir PATH] [--open]
//!                   <data.nt> [query]       bulk-load into the triple store
//!                                           (hash-sharded when N > 1),
//!                                           report stats, run the query
//!                                           through the service with the
//!                                           chosen BGP join strategy;
//!                                           `--limit K` streams only the
//!                                           first K solutions (LIMIT
//!                                           pushdown), `--deadline-ms T`
//!                                           budgets the query — exceeding
//!                                           it is a clean error;
//!                                           `--profile` prints the query's
//!                                           execution profile (span tree),
//!                                           `--metrics-json` dumps the
//!                                           process-wide metrics registry;
//!                                           `--dir PATH` persists every
//!                                           ingest batch durably to PATH,
//!                                           `--open` reopens such a store
//!                                           (then only `[query]` follows)
//! wdsparql demo                             run a tiny built-in scenario
//! ```
//!
//! `<query>` is a pattern in the paper's syntax, e.g.
//! `"(?x, knows, ?y) OPT (?y, email, ?e)"`, or SPARQL-style curly syntax.
//! `<select-q>` is `"SELECT ?x ?y WHERE { ... }"`. `<µ>` is a
//! comma-separated binding list, e.g. `"x=alice,y=bob"`.

#![forbid(unsafe_code)]

use std::process::ExitCode;
use wdsparql_contain::{decide_containment, SearchBudget, Verdict};
use wdsparql_core::{count_by_domain, enumerate_with_stats, Engine, Query, Strategy};
use wdsparql_project::{enumerate_projected, ProjectedQuery};
use wdsparql_rdf::{parse_ntriples, Mapping};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  wdsparql analyze <query>
  wdsparql eval    <data.nt> <query>
  wdsparql check   <data.nt> <query> <bindings>   (e.g. \"x=alice,y=bob\")
  wdsparql count   <data.nt> <query>
  wdsparql select  <data.nt> <select-query>       (e.g. \"SELECT ?x WHERE { ... }\")
  wdsparql contain <query1> <query2>
  wdsparql forest  <query>
  wdsparql store   [--shards N] [--max-triples N]
                   [--join-strategy pairwise|wco|auto]
                   [--limit K] [--deadline-ms T]
                   [--profile] [--metrics-json PATH]
                   [--dir PATH] [--open] <data.nt> [query]
  wdsparql demo";

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing subcommand")?;
    match cmd.as_str() {
        "analyze" => {
            let query = parse_query(args.get(1))?;
            // Width analysis needs no data; use an empty engine.
            let engine = Engine::new(wdsparql_rdf::RdfGraph::new());
            println!("query: {query}");
            println!("{}", engine.analyze(&query));
            Ok(())
        }
        "forest" => {
            let query = parse_query(args.get(1))?;
            print!("{}", query.forest());
            Ok(())
        }
        "eval" => {
            let graph = load_graph(args.get(1))?;
            let text = args.get(2).ok_or("missing query argument")?;
            let engine = Engine::new(graph);
            // Curly-syntax queries may carry top-level FILTER clauses.
            let sols = if text.trim_start().starts_with('{') {
                let (query, filter) = Query::parse_with_filter(text).map_err(|e| e.to_string())?;
                engine.evaluate_filtered(&query, &filter)
            } else {
                engine.evaluate(&parse_query(args.get(2))?)
            };
            println!("{} solution(s):", sols.len());
            for mu in &sols {
                println!("  {mu}");
            }
            Ok(())
        }
        "check" => {
            let graph = load_graph(args.get(1))?;
            let query = parse_query(args.get(2))?;
            let mu = parse_bindings(args.get(3))?;
            let engine = Engine::new(graph);
            println!("µ = {mu}");
            let reference = engine.check(&query, &mu, Strategy::Naive);
            println!("naive (Lemma 1, exact homomorphisms): {reference}");
            let dw = query.domination_width();
            let pebble = engine.check(&query, &mu, Strategy::Pebble { k: dw });
            println!("pebble (Theorem 1, k = dw = {dw}):      {pebble}");
            if reference != pebble {
                return Err("internal disagreement between strategies (bug)".into());
            }
            Ok(())
        }
        "count" => {
            let graph = load_graph(args.get(1))?;
            let query = parse_query(args.get(2))?;
            let (sols, stats) = enumerate_with_stats(query.forest(), &graph);
            println!("{} solution(s)", sols.len());
            for (domain, count) in count_by_domain(query.forest(), &graph) {
                let names: Vec<String> = domain.iter().map(|v| v.to_string()).collect();
                println!("  {{{}}}: {count}", names.join(", "));
            }
            println!(
                "(work: {} hom calls, {} steps, max delay {} steps)",
                stats.hom_calls, stats.steps, stats.max_delay_steps
            );
            Ok(())
        }
        "select" => {
            let graph = load_graph(args.get(1))?;
            let text = args.get(2).ok_or("missing SELECT query argument")?;
            let query = ProjectedQuery::parse(text).map_err(|e| e.to_string())?;
            println!("query: {query}");
            let sols = enumerate_projected(&query, &graph);
            println!("{} projected solution(s):", sols.len());
            for mu in &sols {
                println!("  {mu}");
            }
            Ok(())
        }
        "contain" => {
            let q1 = parse_query(args.get(1))?;
            let q2 = parse_query(args.get(2))?;
            let budget = SearchBudget::default();
            for (label, a, b) in [("P1 ⊆ P2", &q1, &q2), ("P2 ⊆ P1", &q2, &q1)] {
                match decide_containment(a.forest(), b.forest(), &budget) {
                    Verdict::Contained => println!("{label}: contained (proved)"),
                    Verdict::NotContained(ce) => {
                        println!("{label}: NOT contained; witness µ = {} on:", ce.mu);
                        for t in ce.graph.iter() {
                            println!("    {t}");
                        }
                    }
                    Verdict::Unknown => println!("{label}: unknown (within budget)"),
                }
            }
            Ok(())
        }
        "store" => run_store(&args[1..]),
        "demo" => {
            demo();
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}")),
    }
}

/// The `store` subcommand: bulk-load an N-Triples file into the triple
/// store — one [`wdsparql_store::TripleStore`] by default, a
/// hash-by-subject [`wdsparql_store::ShardedStore`] under `--shards N` —
/// report the ingest lifecycle, and run an optional query through the
/// store-backed engine and the service's planned BGP path.
/// `--max-triples N` caps ingest (per shard when sharded); the capacity
/// guard surfaces as a clean error instead of a panic. `--join-strategy`
/// picks how the service joins BGPs: `pairwise`, `wco` (the
/// worst-case-optimal leapfrog join) or `auto` (the default: cyclic
/// cores take the WCOJ). `--profile` runs the BGP through the profiled
/// query path and prints the execution span tree (EXPLAIN ANALYZE
/// style); `--metrics-json PATH` dumps the process-wide metrics
/// registry as JSON after the run. `--limit K` and `--deadline-ms T`
/// take the streaming service path instead: the evaluation stops after
/// the first K solutions (LIMIT pushdown — later solutions are never
/// computed), and a missed deadline surfaces as a clean
/// `query deadline exceeded` error rather than running to completion.
/// `--dir PATH` makes the store durable: every ingest batch commits to
/// disk (crash-safe tmp→fsync→rename protocol) before it is
/// acknowledged. `--open` reopens a store previously persisted with
/// `--dir` — no data file is read; the single positional argument is
/// the optional query. Corruption on reopen is a clean error.
fn run_store(args: &[String]) -> Result<(), String> {
    let mut shards = 1usize;
    let mut max_triples: Option<usize> = None;
    let mut strategy = wdsparql_store::JoinStrategy::default();
    let mut profile = false;
    let mut limit: Option<usize> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut metrics_json: Option<String> = None;
    let mut dir: Option<String> = None;
    let mut open = false;
    let mut positional: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut flag = |name: &str| -> Result<usize, String> {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))?
                .parse::<usize>()
                .map_err(|e| format!("{name}: {e}"))
        };
        match arg.as_str() {
            "--shards" => shards = flag("--shards")?,
            "--max-triples" => max_triples = Some(flag("--max-triples")?),
            "--join-strategy" => {
                let value = it.next().ok_or("--join-strategy needs a value")?;
                strategy = wdsparql_store::JoinStrategy::parse(value).ok_or_else(|| {
                    format!("--join-strategy: {value:?} is not pairwise, wco or auto")
                })?;
            }
            "--profile" => profile = true,
            "--limit" => limit = Some(flag("--limit")?),
            "--deadline-ms" => deadline_ms = Some(flag("--deadline-ms")? as u64),
            "--metrics-json" => {
                metrics_json = Some(it.next().ok_or("--metrics-json needs a path")?.to_string());
            }
            "--dir" => dir = Some(it.next().ok_or("--dir needs a path")?.to_string()),
            "--open" => open = true,
            _ => positional.push(arg),
        }
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if open && dir.is_none() {
        return Err("--open needs --dir PATH to know which store to reopen".into());
    }
    store_command(
        shards,
        max_triples,
        strategy,
        profile,
        limit,
        deadline_ms,
        dir.as_deref(),
        open,
        &positional,
    )?;
    if let Some(path) = metrics_json {
        std::fs::write(&path, wdsparql_store::metrics_json())
            .map_err(|e| format!("{path}: {e}"))?;
        println!("(metrics registry written to {path})");
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn store_command(
    shards: usize,
    max_triples: Option<usize>,
    strategy: wdsparql_store::JoinStrategy,
    profile: bool,
    limit: Option<usize>,
    deadline_ms: Option<u64>,
    dir: Option<&str>,
    open: bool,
    positional: &[&String],
) -> Result<(), String> {
    // `--open` reads no data file: the store's contents come from disk
    // and the only positional is the optional query.
    let (graph, query_text) = if open {
        (wdsparql_rdf::RdfGraph::new(), positional.first().copied())
    } else {
        (
            load_graph(positional.first().copied())?,
            positional.get(1).copied(),
        )
    };
    let streaming = limit.is_some() || deadline_ms.is_some();
    if streaming && query_text.is_none() {
        return Err("--limit/--deadline-ms need a query to run".into());
    }
    // On reopen the layout on disk decides single vs sharded: a
    // `shard-0/` subdirectory marks a sharded store regardless of what
    // `--shards` says today.
    let sharded = if open {
        let d = dir.expect("--open was checked to carry --dir");
        std::path::Path::new(d).join("shard-0").is_dir()
    } else {
        shards > 1
    };
    // Load in batches, as an ingest pipeline would: each batch appends
    // sorted delta segments (scattered across the shards when sharded);
    // the explicit compact folds whatever the adaptive policy left
    // pending. Capacity exhaustion is a clean error, not a panic.
    let mut stream = graph.iter().copied();
    let mut batches = std::iter::from_fn(|| {
        let batch: Vec<_> = stream.by_ref().take(4096).collect();
        (!batch.is_empty()).then_some(batch)
    });
    if sharded {
        let store = if open {
            let d = dir.expect("--open was checked to carry --dir");
            std::sync::Arc::new(wdsparql_store::ShardedStore::open(d).map_err(|e| e.to_string())?)
        } else {
            let store = std::sync::Arc::new(wdsparql_store::ShardedStore::new(shards));
            if let Some(d) = dir {
                store.persist_to(d).map_err(|e| e.to_string())?;
            }
            store
        };
        store.set_capacity_limit(max_triples);
        store.set_join_strategy(strategy);
        for batch in batches {
            store.try_bulk_load(batch).map_err(|e| e.to_string())?;
        }
        let staged = store.stats();
        store.compact();
        let stats = store.stats();
        print!("{stats}");
        if let Some(d) = dir {
            println!("(durable store at {d}: shard epochs {:?})", store.epochs());
        }
        report_ingest_lifecycle(
            staged.shards.iter().map(|s| s.delta_rows).sum(),
            staged.shards.iter().map(|s| s.segments).sum(),
            stats.shards.iter().map(|s| s.compactions).sum(),
        );
        let Some(text) = query_text else {
            return Ok(());
        };
        let query = Query::parse(text).map_err(|e| e.to_string())?;
        if streaming {
            let pats = bgp_patterns(query.pattern())
                .ok_or("--limit/--deadline-ms need an AND-only (BGP) query")?;
            let budget = budget_from(deadline_ms);
            match limit {
                Some(k) => {
                    let rows = store
                        .query_limited(&pats, k, &budget)
                        .map_err(|e| e.to_string())?;
                    print_streamed(&rows, Some(k));
                }
                None => {
                    let rows = store
                        .query_budgeted(&pats, &budget)
                        .map_err(|e| e.to_string())?;
                    print_streamed(&rows, None);
                }
            }
            return Ok(());
        }
        let engine =
            Engine::from_sharded_store(std::sync::Arc::clone(&store)).with_join_strategy(strategy);
        print_solutions(&query, &engine.evaluate(&query));
        if let Some(pats) = bgp_patterns(query.pattern()) {
            let planned = if profile {
                store.query_with_profile(&pats)
            } else {
                store.query_with_plan(&pats)
            };
            let again = store.query(&pats);
            assert_eq!(planned.solutions.len(), again.len());
            report_bgp_service(
                &pats,
                &planned.plan,
                planned.strategy,
                planned.solutions.len(),
                &format!("epochs {:?}", planned.read),
                store.cache_stats(),
            );
            print_profile(planned.profile.as_ref());
        }
        return Ok(());
    }
    let store = if open {
        let d = dir.expect("--open was checked to carry --dir");
        std::sync::Arc::new(wdsparql_store::TripleStore::open(d).map_err(|e| e.to_string())?)
    } else {
        let store = std::sync::Arc::new(wdsparql_store::TripleStore::new());
        if let Some(d) = dir {
            store.persist_to(d).map_err(|e| e.to_string())?;
        }
        store
    };
    store.set_capacity_limit(max_triples);
    store.set_join_strategy(strategy);
    batches.try_for_each(|batch| {
        store
            .try_bulk_load(batch)
            .map(|_| ())
            .map_err(|e| e.to_string())
    })?;
    let staged = store.stats();
    store.compact();
    let stats = store.stats();
    println!("{stats}");
    if let Some(d) = dir {
        println!("(durable store at {d}: epoch {})", store.epoch());
    }
    report_ingest_lifecycle(staged.delta_rows, staged.segments, stats.compactions);
    let Some(text) = query_text else {
        return Ok(());
    };
    let query = Query::parse(text).map_err(|e| e.to_string())?;
    if streaming {
        let pats = bgp_patterns(query.pattern())
            .ok_or("--limit/--deadline-ms need an AND-only (BGP) query")?;
        let budget = budget_from(deadline_ms);
        match limit {
            Some(k) => {
                let rows = store
                    .query_limited(&pats, k, &budget)
                    .map_err(|e| e.to_string())?;
                print_streamed(&rows, Some(k));
            }
            None => {
                let rows = store
                    .query_budgeted(&pats, &budget)
                    .map_err(|e| e.to_string())?;
                print_streamed(&rows, None);
            }
        }
        return Ok(());
    }
    let engine = Engine::from_store(std::sync::Arc::clone(&store)).with_join_strategy(strategy);
    print_solutions(&query, &engine.evaluate(&query));
    // AND-only queries additionally go through the service's planned,
    // cached BGP path — plan and solutions from one snapshot; a second
    // run shows the cache.
    if let Some(pats) = bgp_patterns(query.pattern()) {
        let planned = if profile {
            store.query_with_profile(&pats)
        } else {
            store.query_with_plan(&pats)
        };
        let again = store.query(&pats);
        assert_eq!(planned.solutions.len(), again.len());
        report_bgp_service(
            &pats,
            &planned.plan,
            planned.strategy,
            planned.solutions.len(),
            &format!("epoch {}", planned.epoch),
            store.cache_stats(),
        );
        print_profile(planned.profile.as_ref());
    }
    Ok(())
}

/// The query budget implied by `--deadline-ms` (unlimited without it).
fn budget_from(deadline_ms: Option<u64>) -> wdsparql_rdf::QueryBudget {
    match deadline_ms {
        Some(ms) => wdsparql_rdf::QueryBudget::with_deadline(std::time::Duration::from_millis(ms)),
        None => wdsparql_rdf::QueryBudget::unlimited(),
    }
}

/// Prints the solutions of the streaming (`--limit`/`--deadline-ms`)
/// service path: every row under a limit (the user asked for exactly
/// these), the first 10 otherwise.
fn print_streamed(rows: &[Mapping], limit: Option<usize>) {
    match limit {
        Some(k) => {
            println!("streamed {} solution(s) under limit {k}:", rows.len());
            for mu in rows {
                println!("  -> {mu}");
            }
        }
        None => {
            println!("streamed {} solution(s) within deadline:", rows.len());
            for mu in rows.iter().take(10) {
                println!("  -> {mu}");
            }
            if rows.len() > 10 {
                println!("  ... ({} more)", rows.len() - 10);
            }
        }
    }
}

/// Prints the execution profile requested by `--profile`, if any.
fn print_profile(profile: Option<&wdsparql_obs::QueryProfile>) {
    if let Some(p) = profile {
        println!("execution profile:");
        print!("{p}");
    }
}

fn report_ingest_lifecycle(staged_deltas: usize, staged_segments: usize, compactions: u64) {
    println!(
        "(ingest staged {staged_deltas} delta row(s) in {staged_segments} segment(s); \
         {compactions} compaction(s) total)"
    );
}

/// The shared tail of both `store` flavours: the executed plan and the
/// cached-service summary, with the epoch provenance rendered by the
/// caller (`epoch N` for the single store, the `(shard, epoch)` read
/// vector for the sharded facade).
fn report_bgp_service(
    pats: &[wdsparql_rdf::TriplePattern],
    plan: &[usize],
    strategy: wdsparql_store::JoinStrategy,
    solutions: usize,
    provenance: &str,
    cs: wdsparql_store::CacheStats,
) {
    let plan: Vec<String> = plan.iter().map(|&i| pats[i].to_string()).collect();
    println!("service plan (most selective first): {}", plan.join(" ⋈ "));
    println!("service join strategy: {strategy}");
    println!(
        "service BGP path: {solutions} solution(s) at {provenance}; cache {} hit(s) / {} miss(es)",
        cs.hits, cs.misses
    );
}

fn print_solutions(query: &Query, sols: &std::collections::BTreeSet<Mapping>) {
    println!("\nquery: {query}");
    println!("{} solution(s) via the store-backed engine:", sols.len());
    for mu in sols.iter().take(10) {
        println!("  {mu}");
    }
    if sols.len() > 10 {
        println!("  ... ({} more)", sols.len() - 10);
    }
}

/// The triple patterns of an AND-only (BGP) pattern, `None` when the
/// query uses OPT or UNION.
fn bgp_patterns(p: &wdsparql_core::GraphPattern) -> Option<Vec<wdsparql_rdf::TriplePattern>> {
    use wdsparql_core::GraphPattern;
    match p {
        GraphPattern::Triple(t) => Some(vec![*t]),
        GraphPattern::And(l, r) => {
            let mut out = bgp_patterns(l)?;
            out.extend(bgp_patterns(r)?);
            Some(out)
        }
        GraphPattern::Opt(..) | GraphPattern::Union(..) => None,
    }
}

fn parse_query(arg: Option<&String>) -> Result<Query, String> {
    let text = arg.ok_or("missing query argument")?;
    Query::parse(text).map_err(|e| e.to_string())
}

fn load_graph(arg: Option<&String>) -> Result<wdsparql_rdf::RdfGraph, String> {
    let path = arg.ok_or("missing data file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_ntriples(&text).map_err(|e| format!("{path}: {e}"))
}

fn parse_bindings(arg: Option<&String>) -> Result<Mapping, String> {
    let text = arg.ok_or("missing bindings argument")?;
    let mut mu = Mapping::new();
    for part in text.split(',').filter(|s| !s.trim().is_empty()) {
        let (var, val) = part
            .split_once('=')
            .ok_or_else(|| format!("bad binding {part:?} (expected var=iri)"))?;
        mu.bind(
            wdsparql_rdf::Variable::new(var.trim()),
            wdsparql_rdf::Iri::new(val.trim()),
        );
    }
    Ok(mu)
}

fn demo() {
    let graph = wdsparql_workloads::social_network(30, 1);
    let engine = Engine::new(graph);
    let query = Query::parse("((?p, type, Person) OPT (?p, email, ?e)) OPT (?p, city, ?c)")
        .expect("demo query is well-designed");
    println!("demo query: {query}\n");
    println!("{}\n", engine.analyze(&query));
    let sols = engine.evaluate(&query);
    println!("{} solutions; first 5:", sols.len());
    for mu in sols.iter().take(5) {
        println!("  {mu}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn bindings_parse() {
        let mu = parse_bindings(Some(&"x=alice, y=bob".to_string())).unwrap();
        assert_eq!(mu.len(), 2);
        assert_eq!(
            mu.get(wdsparql_rdf::Variable::new("y")),
            Some(wdsparql_rdf::Iri::new("bob"))
        );
        assert!(parse_bindings(Some(&"xalice".to_string())).is_err());
        assert!(parse_bindings(None).is_err());
    }

    #[test]
    fn analyze_and_forest_subcommands() {
        assert!(run(&s(&["analyze", "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["forest", "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["analyze", "(?x, p"])).is_err());
    }

    #[test]
    fn eval_and_check_subcommands() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        assert!(run(&s(&["eval", &p, "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&[
            "check",
            &p,
            "(?x, p, ?y) OPT (?y, q, ?z)",
            "x=a,y=b,z=c"
        ]))
        .is_ok());
        assert!(run(&s(&["eval", "/nonexistent.nt", "(?x, p, ?y)"])).is_err());
        // Curly syntax with a FILTER clause.
        assert!(run(&s(&[
            "eval",
            &p,
            "{ ?x p ?y OPTIONAL { ?y q ?z } FILTER(BOUND(?z)) }",
        ]))
        .is_ok());
    }

    #[test]
    fn count_select_and_contain_subcommands() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\nd p e .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        assert!(run(&s(&["count", &p, "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&[
            "select",
            &p,
            "SELECT ?x WHERE { ?x p ?y OPTIONAL { ?y q ?z } }",
        ]))
        .is_ok());
        assert!(run(&s(&["select", &p, "SELECT ?nope WHERE { ?x p ?y }"])).is_err());
        assert!(run(&s(&[
            "contain",
            "(?x, p, ?y)",
            "(?x, p, ?y) OPT (?y, q, ?z)"
        ]))
        .is_ok());
        assert!(run(&s(&["contain", "(?x, p, ?y)"])).is_err());
    }

    #[test]
    fn store_subcommand_loads_and_queries() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test3");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\nd p e .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        assert!(run(&s(&["store", &p])).is_ok());
        assert!(run(&s(&["store", &p, "(?x, p, ?y) OPT (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["store", &p, "(?x, p, ?y) AND (?y, q, ?z)"])).is_ok());
        assert!(run(&s(&["store", "/nonexistent.nt"])).is_err());
        assert!(run(&s(&["store", &p, "(?x, p"])).is_err());
    }

    #[test]
    fn store_subcommand_shards_and_caps() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test4");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb q c .\nd p e .\ne q a .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        // Sharded ingest + engine query + service BGP path.
        assert!(run(&s(&["store", "--shards", "2", &p])).is_ok());
        assert!(run(&s(&[
            "store",
            "--shards",
            "3",
            &p,
            "(?x, p, ?y) AND (?y, q, ?z)"
        ]))
        .is_ok());
        assert!(run(&s(&[
            "store",
            "--shards",
            "2",
            &p,
            "(?x, p, ?y) OPT (?y, q, ?z)"
        ]))
        .is_ok());
        // Flag validation.
        assert!(run(&s(&["store", "--shards", "0", &p])).is_err());
        assert!(run(&s(&["store", "--shards", "two", &p])).is_err());
        assert!(run(&s(&["store", &p, "--shards"])).is_err());
        // The capacity guard is a clean error (was: a panic), sharded or
        // not.
        let err = run(&s(&["store", "--max-triples", "1", &p])).unwrap_err();
        assert!(err.contains("capacity"), "unexpected error: {err}");
        let err = run(&s(&["store", "--shards", "2", "--max-triples", "1", &p])).unwrap_err();
        assert!(err.contains("capacity"), "unexpected error: {err}");
        // A generous cap passes.
        assert!(run(&s(&["store", "--max-triples", "100", &p])).is_ok());
    }

    #[test]
    fn store_subcommand_join_strategies() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test5");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb p c .\na p c .\nc p a .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        let triangle = "((?x, p, ?y) AND (?y, p, ?z)) AND (?x, p, ?z)";
        for strategy in ["pairwise", "wco", "auto"] {
            assert!(run(&s(&["store", "--join-strategy", strategy, &p, triangle])).is_ok());
            assert!(run(&s(&[
                "store",
                "--shards",
                "2",
                "--join-strategy",
                strategy,
                &p,
                triangle
            ]))
            .is_ok());
        }
        // Flag validation.
        let err = run(&s(&["store", "--join-strategy", "bogus", &p])).unwrap_err();
        assert!(err.contains("join-strategy"), "unexpected error: {err}");
        assert!(run(&s(&["store", &p, "--join-strategy"])).is_err());
    }

    #[test]
    fn store_subcommand_profile_and_metrics() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test6");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb p c .\na p c .\nc p a .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        let triangle = "((?x, p, ?y) AND (?y, p, ?z)) AND (?x, p, ?z)";
        // --profile runs the profiled BGP path, single and sharded.
        assert!(run(&s(&["store", "--profile", &p, triangle])).is_ok());
        assert!(run(&s(&["store", "--shards", "2", "--profile", &p, triangle])).is_ok());
        // --metrics-json writes a registry snapshot.
        let out = dir.join("metrics.json");
        let out_s = out.to_string_lossy().to_string();
        assert!(run(&s(&["store", "--metrics-json", &out_s, &p, triangle])).is_ok());
        let json = std::fs::read_to_string(&out).unwrap();
        assert!(json.contains("\"schema\": 3"), "{json}");
        assert!(json.contains("\"store.queries_total\""), "{json}");
        assert!(json.contains("\"query.total_ns\""), "{json}");
        // Flag validation.
        assert!(run(&s(&["store", &p, "--metrics-json"])).is_err());
        assert!(run(&s(&[
            "store",
            "--metrics-json",
            "/nonexistent-dir/x.json",
            &p
        ]))
        .is_err());
    }

    #[test]
    fn store_subcommand_limit_and_deadline() {
        let dir = std::env::temp_dir().join("wdsparql-cli-test7");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("data.nt");
        std::fs::write(&path, "a p b .\nb p c .\na p c .\nc p a .\n").unwrap();
        let p = path.to_string_lossy().to_string();
        let triangle = "((?x, p, ?y) AND (?y, p, ?z)) AND (?x, p, ?z)";
        // The streamed paths run green under a generous budget, single
        // and sharded.
        assert!(run(&s(&["store", "--limit", "1", &p, triangle])).is_ok());
        assert!(run(&s(&["store", "--deadline-ms", "10000", &p, triangle])).is_ok());
        assert!(run(&s(&[
            "store",
            "--shards",
            "2",
            "--limit",
            "1",
            "--deadline-ms",
            "10000",
            &p,
            triangle
        ]))
        .is_ok());
        // A zero deadline is a clean, typed failure — single and sharded.
        let err = run(&s(&["store", "--deadline-ms", "0", &p, triangle])).unwrap_err();
        assert!(err.contains("deadline exceeded"), "unexpected error: {err}");
        let err = run(&s(&[
            "store",
            "--shards",
            "2",
            "--deadline-ms",
            "0",
            &p,
            triangle,
        ]))
        .unwrap_err();
        assert!(err.contains("deadline exceeded"), "unexpected error: {err}");
        // The streamed path needs a BGP query, and a query at all.
        assert!(run(&s(&[
            "store",
            "--limit",
            "1",
            &p,
            "(?x, p, ?y) OPT (?y, p, ?z)"
        ]))
        .is_err());
        assert!(run(&s(&["store", "--limit", "1", &p])).is_err());
        // Flag validation.
        assert!(run(&s(&["store", &p, "--limit"])).is_err());
        assert!(run(&s(&["store", &p, "--deadline-ms"])).is_err());
    }

    #[test]
    fn bgp_patterns_accept_and_only_queries() {
        let and = Query::parse("(?x, p, ?y) AND (?y, q, ?z)").unwrap();
        assert_eq!(bgp_patterns(and.pattern()).unwrap().len(), 2);
        let opt = Query::parse("(?x, p, ?y) OPT (?y, q, ?z)").unwrap();
        assert!(bgp_patterns(opt.pattern()).is_none());
    }

    #[test]
    fn unknown_subcommand_is_an_error() {
        assert!(run(&s(&["bogus"])).is_err());
        assert!(run(&[]).is_err());
    }
}
