//! End-to-end smoke tests for the `wdsparql` binary: each subcommand
//! path is spawned as a real process and checked for exit code and
//! output shape.

use std::io::Write;
use std::process::{Command, Output};

fn wdsparql(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_wdsparql"))
        .args(args)
        .output()
        .expect("failed to spawn the wdsparql binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// Writes a small N-Triples file and returns its path.
fn fixture_nt(name: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("wdsparql_smoke_{}_{name}.nt", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create fixture");
    writeln!(f, "<alice> <knows> <bob> .").unwrap();
    writeln!(f, "<bob> <email> <bob@example.org> .").unwrap();
    writeln!(f, "<bob> <knows> <carol> .").unwrap();
    path
}

#[test]
fn demo_runs_green() {
    let out = wdsparql(&["demo"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("demo query:"), "unexpected output: {text}");
    assert!(text.contains("solutions"), "unexpected output: {text}");
}

#[test]
fn analyze_reports_widths() {
    let out = wdsparql(&["analyze", "(?x, knows, ?y) OPT (?y, email, ?e)"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("domination width"),
        "unexpected output: {text}"
    );
    assert!(text.contains("dw(P) = 1"), "unexpected output: {text}");
}

#[test]
fn eval_enumerates_solutions() {
    let data = fixture_nt("eval");
    let out = wdsparql(&[
        "eval",
        data.to_str().unwrap(),
        "(?x, knows, ?y) OPT (?y, email, ?e)",
    ]);
    let _ = std::fs::remove_file(&data);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("2 solution(s)"), "unexpected output: {text}");
    assert!(
        text.contains("bob@example.org"),
        "unexpected output: {text}"
    );
}

#[test]
fn check_accepts_a_true_binding() {
    let data = fixture_nt("check");
    let out = wdsparql(&[
        "check",
        data.to_str().unwrap(),
        "(?x, knows, ?y)",
        "x=alice,y=bob",
    ]);
    let _ = std::fs::remove_file(&data);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

#[test]
fn contain_reports_both_directions() {
    let out = wdsparql(&[
        "contain",
        "(?x, knows, ?y)",
        "(?x, knows, ?y) OPT (?y, email, ?e)",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
}

#[test]
fn forest_prints_the_translation() {
    let out = wdsparql(&["forest", "(?x, knows, ?y) OPT (?y, email, ?e)"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("T1"),
        "unexpected output: {}",
        stdout(&out)
    );
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = wdsparql(&["frobnicate"]);
    assert!(!out.status.success(), "bogus subcommand must fail");
    let text = stderr(&out);
    assert!(text.contains("unknown subcommand"), "stderr: {text}");
    assert!(text.contains("usage:"), "stderr: {text}");
}

#[test]
fn missing_arguments_fail() {
    let out = wdsparql(&[]);
    assert!(!out.status.success(), "no arguments must fail");
    assert!(stderr(&out).contains("usage:"), "stderr: {}", stderr(&out));
}

#[test]
fn malformed_query_fails_cleanly() {
    let out = wdsparql(&["analyze", "(?x, knows"]);
    assert!(!out.status.success(), "parse error must fail");
}

#[test]
fn store_reports_stats_and_serves_queries() {
    let data = fixture_nt("store");
    let out = wdsparql(&["store", data.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("3 triple(s)") && text.contains("predicate cardinalities:"),
        "unexpected output: {text}"
    );

    // An OPT query runs through the store-backed engine.
    let out = wdsparql(&[
        "store",
        data.to_str().unwrap(),
        "(?x, knows, ?y) OPT (?y, email, ?e)",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("solution(s) via the store-backed engine"),
        "unexpected output: {text}"
    );

    // An AND-only query additionally exercises the cached service path.
    let out = wdsparql(&[
        "store",
        data.to_str().unwrap(),
        "(?x, knows, ?y) AND (?y, knows, ?z)",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("service plan"), "unexpected output: {text}");
    assert!(
        text.contains("1 hit(s) / 1 miss(es)"),
        "unexpected output: {text}"
    );

    // A missing data file fails cleanly.
    let out = wdsparql(&["store", "/nonexistent.nt"]);
    assert!(!out.status.success());
}

#[test]
fn store_shards_scatter_and_answer_queries() {
    let data = fixture_nt("store_shards");
    let out = wdsparql(&["store", "--shards", "2", data.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("3 triple(s)") && text.contains("2 shard(s)"),
        "unexpected output: {text}"
    );
    assert!(text.contains("shard 1:"), "unexpected output: {text}");

    // The same AND-only query runs through the sharded engine and the
    // facade's planned BGP path, epoch vector and all.
    let out = wdsparql(&[
        "store",
        "--shards",
        "2",
        data.to_str().unwrap(),
        "(?x, knows, ?y) AND (?y, knows, ?z)",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("service plan"), "unexpected output: {text}");
    assert!(text.contains("epochs ["), "unexpected output: {text}");
}

/// A fixture holding a `p`-triangle, for the cyclic-core queries.
fn triangle_nt(name: &str) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("wdsparql_smoke_{}_{name}.nt", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create fixture");
    writeln!(f, "<a> <p> <b> .").unwrap();
    writeln!(f, "<b> <p> <c> .").unwrap();
    writeln!(f, "<a> <p> <c> .").unwrap();
    writeln!(f, "<c> <p> <d> .").unwrap();
    path
}

const TRIANGLE_QUERY: &str = "((?x, p, ?y) AND (?y, p, ?z)) AND (?x, p, ?z)";

#[test]
fn store_join_strategy_wco_end_to_end() {
    let data = triangle_nt("wco");
    // The WCOJ answers the triangle through the service and the
    // store-backed engine...
    let wco = wdsparql(&[
        "store",
        "--join-strategy",
        "wco",
        data.to_str().unwrap(),
        TRIANGLE_QUERY,
    ]);
    assert!(wco.status.success(), "stderr: {}", stderr(&wco));
    let wco_text = stdout(&wco);
    assert!(
        wco_text.contains("service join strategy: wco"),
        "unexpected output: {wco_text}"
    );
    assert!(
        wco_text.contains("1 solution(s) via the store-backed engine"),
        "unexpected output: {wco_text}"
    );
    // ...and agrees with the pairwise pipeline on the same data.
    let pairwise = wdsparql(&[
        "store",
        "--join-strategy",
        "pairwise",
        data.to_str().unwrap(),
        TRIANGLE_QUERY,
    ]);
    assert!(pairwise.status.success(), "stderr: {}", stderr(&pairwise));
    let pair_text = stdout(&pairwise);
    assert!(
        pair_text.contains("service join strategy: pairwise"),
        "unexpected output: {pair_text}"
    );
    let solutions = |text: &str| -> String {
        text.lines()
            .find(|l| l.contains("service BGP path:"))
            .expect("service summary line")
            .split(';')
            .next()
            .expect("solution count segment")
            .to_string()
    };
    assert_eq!(solutions(&wco_text), solutions(&pair_text));
    // `auto` resolves the cyclic core to the WCOJ — on the sharded
    // facade too.
    let auto = wdsparql(&[
        "store",
        "--shards",
        "2",
        data.to_str().unwrap(),
        TRIANGLE_QUERY,
    ]);
    assert!(auto.status.success(), "stderr: {}", stderr(&auto));
    let auto_text = stdout(&auto);
    assert!(
        auto_text.contains("service join strategy: wco"),
        "auto must resolve the triangle to wco: {auto_text}"
    );
    let _ = std::fs::remove_file(&data);
}

#[test]
fn store_profile_prints_a_span_tree() {
    let data = triangle_nt("profile");
    let out = wdsparql(&["store", "--profile", data.to_str().unwrap(), TRIANGLE_QUERY]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("execution profile:"),
        "unexpected output: {text}"
    );
    // The root span names the resolved join strategy...
    assert!(text.contains("strategy=wco"), "unexpected output: {text}");
    assert!(text.contains("cache=miss"), "unexpected output: {text}");
    // ...and the execute span carries one `level ?v` child per WCOJ
    // variable level, rows and all.
    assert!(text.contains("execute"), "unexpected output: {text}");
    for level in ["level ?x", "level ?y", "level ?z"] {
        let line = text
            .lines()
            .find(|l| l.contains(level))
            .unwrap_or_else(|| panic!("missing {level}: {text}"));
        assert!(line.contains("rows="), "no row count on {level}: {line}");
        assert!(line.contains("seeks="), "no seek count on {level}: {line}");
    }
    // The sharded facade profiles too, with read provenance.
    let out = wdsparql(&[
        "store",
        "--shards",
        "2",
        "--profile",
        data.to_str().unwrap(),
        TRIANGLE_QUERY,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(
        text.contains("routing=fan-out") && text.contains("shards_read="),
        "unexpected output: {text}"
    );
    let _ = std::fs::remove_file(&data);
}

#[test]
fn store_metrics_json_dumps_the_registry() {
    let data = triangle_nt("metrics");
    let out_path = std::env::temp_dir().join(format!(
        "wdsparql_smoke_{}_metrics.json",
        std::process::id()
    ));
    let out = wdsparql(&[
        "store",
        "--metrics-json",
        out_path.to_str().unwrap(),
        data.to_str().unwrap(),
        TRIANGLE_QUERY,
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = std::fs::read_to_string(&out_path).expect("metrics file written");
    for key in [
        "\"schema\": 3",
        "\"store.queries_total\"",
        "\"store.triples\"",
        "\"query.total_ns\"",
        "\"shard_rows\"",
    ] {
        assert!(json.contains(key), "missing {key}: {json}");
    }
    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_file(&out_path);
}

/// A fixture holding the complete directed graph on `n` vertices — the
/// dense worst case for the pairwise 4-clique join.
fn dense_nt(name: &str, n: usize) -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("wdsparql_smoke_{}_{name}.nt", std::process::id()));
    let mut text = String::new();
    for i in 0..n {
        for j in 0..n {
            if i != j {
                text.push_str(&format!("<v{i}> <p> <v{j}> .\n"));
            }
        }
    }
    std::fs::write(&path, text).expect("create fixture");
    path
}

const FOUR_CLIQUE_QUERY: &str = "((((?a, p, ?b) AND (?b, p, ?c)) AND ((?c, p, ?d) AND \
                                 (?a, p, ?c))) AND ((?a, p, ?d) AND (?b, p, ?d)))";

#[test]
fn store_deadline_fails_fast_with_a_clean_error() {
    // A pairwise 4-clique over the dense graph enumerates far longer
    // than 10ms; the deadline must cut it short with a typed error
    // (never a panic), well before the full-enumeration runtime.
    let data = dense_nt("deadline", 40);
    let start = std::time::Instant::now();
    let out = wdsparql(&[
        "store",
        "--join-strategy",
        "pairwise",
        "--deadline-ms",
        "10",
        data.to_str().unwrap(),
        FOUR_CLIQUE_QUERY,
    ]);
    let elapsed = start.elapsed();
    let _ = std::fs::remove_file(&data);
    assert!(!out.status.success(), "a missed deadline must fail");
    let err = stderr(&out);
    assert!(
        err.contains("query deadline exceeded"),
        "unexpected stderr: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must be an error, not a panic: {err}"
    );
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "deadline must cut enumeration short, took {elapsed:?}"
    );
}

#[test]
fn store_limit_echoes_exactly_k_rows() {
    let data = dense_nt("limit", 6);
    for shards in ["1", "2"] {
        let out = wdsparql(&[
            "store",
            "--shards",
            shards,
            "--limit",
            "3",
            data.to_str().unwrap(),
            TRIANGLE_QUERY,
        ]);
        assert!(out.status.success(), "stderr: {}", stderr(&out));
        let text = stdout(&out);
        assert!(
            text.contains("streamed 3 solution(s) under limit 3"),
            "unexpected output: {text}"
        );
        assert_eq!(
            text.lines().filter(|l| l.starts_with("  -> ")).count(),
            3,
            "exactly K rows must be echoed: {text}"
        );
    }
    let _ = std::fs::remove_file(&data);
}

#[test]
fn store_join_strategy_flag_validates() {
    let data = triangle_nt("wco_flag");
    let out = wdsparql(&["store", "--join-strategy", "bogus", data.to_str().unwrap()]);
    assert!(!out.status.success(), "bogus strategy must fail");
    assert!(
        stderr(&out).contains("join-strategy"),
        "unexpected stderr: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_file(&data);
}

#[test]
fn store_capacity_guard_is_a_clean_error() {
    // Before the fix this path hit the panicking `bulk_load`; now the
    // guard surfaces as a normal CLI error with a non-zero exit.
    let data = fixture_nt("store_cap");
    let out = wdsparql(&["store", "--max-triples", "1", data.to_str().unwrap()]);
    assert!(!out.status.success(), "capacity overflow must fail");
    let err = stderr(&out);
    assert!(
        err.contains("capacity exceeded") && err.contains("configured limit"),
        "unexpected stderr: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must be an error, not a panic: {err}"
    );
}

#[test]
fn store_restart_serves_identical_results() {
    // Durable round-trip: ingest with `--dir`, then reopen the same
    // directory with `--open` in a fresh process. The triangle query
    // must return the same solutions at the same durable epoch —
    // nothing about the store may depend on process-lifetime state.
    let data = triangle_nt("restart");
    let dir = std::env::temp_dir().join(format!(
        "wdsparql_smoke_{}_restart_store",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let ingest = wdsparql(&[
        "store",
        "--dir",
        dir.to_str().unwrap(),
        data.to_str().unwrap(),
        TRIANGLE_QUERY,
    ]);
    assert!(ingest.status.success(), "stderr: {}", stderr(&ingest));
    let first = stdout(&ingest);
    assert!(first.contains("epoch 1)"), "durable epoch missing: {first}");

    let reopen = wdsparql(&[
        "store",
        "--dir",
        dir.to_str().unwrap(),
        "--open",
        TRIANGLE_QUERY,
    ]);
    assert!(reopen.status.success(), "stderr: {}", stderr(&reopen));
    let second = stdout(&reopen);
    assert!(
        second.contains("epoch 1)"),
        "reopened epoch differs: {second}"
    );

    // The solution rows (engine output lines `  {?x → …}`) must match
    // as sets across the restart.
    let rows = |text: &str| -> Vec<String> {
        let mut v: Vec<String> = text
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .map(str::to_string)
            .collect();
        v.sort();
        v
    };
    let (a, b) = (rows(&first), rows(&second));
    assert!(!a.is_empty(), "triangle query must have solutions: {first}");
    assert_eq!(a, b, "restart changed the answer set");

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_open_with_a_corrupt_manifest_is_a_clean_error() {
    let data = triangle_nt("corrupt");
    let dir = std::env::temp_dir().join(format!(
        "wdsparql_smoke_{}_corrupt_store",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let ingest = wdsparql(&[
        "store",
        "--dir",
        dir.to_str().unwrap(),
        data.to_str().unwrap(),
    ]);
    assert!(ingest.status.success(), "stderr: {}", stderr(&ingest));

    // Smash the manifest's header page (magic + version live in the
    // first bytes, under the header checksum).
    let manifest = dir.join("manifest");
    let mut bytes = std::fs::read(&manifest).expect("manifest exists");
    for b in bytes.iter_mut().take(8) {
        *b ^= 0xff;
    }
    std::fs::write(&manifest, bytes).expect("rewrite manifest");

    let reopen = wdsparql(&["store", "--dir", dir.to_str().unwrap(), "--open"]);
    assert!(!reopen.status.success(), "corrupt manifest must fail");
    let err = stderr(&reopen);
    assert!(
        err.contains("corrupt manifest"),
        "typed corruption error expected, got: {err}"
    );
    assert!(
        !err.contains("panicked"),
        "must be an error, not a panic: {err}"
    );

    let _ = std::fs::remove_file(&data);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_open_requires_dir() {
    let out = wdsparql(&["store", "--open"]);
    assert!(!out.status.success());
    assert!(
        stderr(&out).contains("--open needs --dir"),
        "unexpected stderr: {}",
        stderr(&out)
    );
}
