//! Lemma 1 machinery (§2.1): the characterisation of `µ ∈ ⟦T⟧_G` for a
//! wdPT `T` in NR normal form:
//!
//! > `µ ∈ ⟦T⟧_G` iff there is a subtree `T'` of `T` such that (1) `µ` is a
//! > homomorphism from `pat(T')` to `G`, and (2) no child `n` of `T'` has a
//! > homomorphism from `pat(n)` to `G` compatible with `µ`.
//!
//! Since trees are in NR normal form, the candidate subtree `T^µ` with
//! `vars(T^µ) = dom(µ)` is unique when it exists.

use wdsparql_hom::{find_hom_into_graph, GenTGraph};
use wdsparql_rdf::{Mapping, TripleIndex};
use wdsparql_tree::{subtree_pat, subtree_with_vars, NodeId, Subtree, Wdpt};

/// The unique subtree `T^µ` with `vars(T^µ) = dom(µ)` such that `µ` maps
/// `pat(T^µ)` into `G`, if it exists.
pub fn mu_subtree(t: &Wdpt, g: &dyn TripleIndex, mu: &Mapping) -> Option<Subtree> {
    let dom = mu.domain().collect();
    let st = subtree_with_vars(t, &dom)?;
    subtree_pat(t, &st).maps_into_under(mu, g).then_some(st)
}

/// Does child `n` of the subtree extend compatibly: is there a
/// homomorphism `ν` from `pat(n)` to `G` compatible with `µ`?
pub fn child_extends(t: &Wdpt, g: &dyn TripleIndex, n: NodeId, mu: &Mapping) -> bool {
    let pat = t.pat(n);
    let x: Vec<_> = pat.vars().into_iter().filter(|v| mu.contains(*v)).collect();
    let src = GenTGraph::new(pat.clone(), x);
    find_hom_into_graph(&src, g, mu).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_hom::TGraph;
    use wdsparql_rdf::term::{iri, var};
    use wdsparql_rdf::tp;
    use wdsparql_rdf::RdfGraph;
    use wdsparql_tree::ROOT;

    fn tg(pats: &[(&str, &str, &str)]) -> TGraph {
        TGraph::from_patterns(pats.iter().map(|&(s, p, o)| {
            let term = |x: &str| {
                if let Some(name) = x.strip_prefix('?') {
                    var(name)
                } else {
                    iri(x)
                }
            };
            tp(term(s), term(p), term(o))
        }))
    }

    fn sample_tree() -> Wdpt {
        let mut t = Wdpt::new(tg(&[("?x", "p", "?y")]));
        let a = t.add_child(ROOT, tg(&[("?y", "q", "?z")]));
        t.add_child(a, tg(&[("?z", "r", "?w")]));
        t
    }

    #[test]
    fn mu_subtree_exists_when_mapping_matches() {
        let t = sample_tree();
        let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]);
        let mu = Mapping::from_strs([("x", "a"), ("y", "b")]);
        let st = mu_subtree(&t, &g, &mu).unwrap();
        assert_eq!(st.len(), 1);
        let mu2 = Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c")]);
        let st2 = mu_subtree(&t, &g, &mu2).unwrap();
        assert_eq!(st2.len(), 2);
    }

    #[test]
    fn mu_subtree_requires_hom() {
        let t = sample_tree();
        let g = RdfGraph::from_strs([("a", "p", "b")]);
        // Right domain, wrong values.
        let mu = Mapping::from_strs([("x", "b"), ("y", "a")]);
        assert!(mu_subtree(&t, &g, &mu).is_none());
        // Domain not matching any subtree's variable set.
        let mu2 = Mapping::from_strs([("x", "a")]);
        assert!(mu_subtree(&t, &g, &mu2).is_none());
    }

    #[test]
    fn child_extension_checks_compatibility() {
        let t = sample_tree();
        let child = t.children(ROOT)[0];
        let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]);
        let mu_good = Mapping::from_strs([("x", "a"), ("y", "b")]);
        assert!(child_extends(&t, &g, child, &mu_good));
        let g2 = RdfGraph::from_strs([("a", "p", "b"), ("z9", "q", "c")]);
        assert!(!child_extends(&t, &g2, child, &mu_good));
    }
}
