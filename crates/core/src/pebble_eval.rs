//! The Theorem 1 evaluator: the natural algorithm with homomorphism tests
//! replaced by the existential (k+1)-pebble game.
//!
//! For each tree `T_i`: find the unique subtree `T^µ_i` with
//! `vars(T^µ_i) = dom(µ)` mapped by `µ` into `G`; accept if *no* child `n`
//! satisfies `(pat(T^µ_i) ∪ pat(n), vars(T^µ_i)) →µ_{k+1} G`; otherwise
//! move to the next tree; reject after the last tree.
//!
//! * **Soundness** is unconditional: if `µ ∉ ⟦F⟧_G` the algorithm rejects,
//!   because `→µ` implies `→µ_{k+1}` (property (2) in §3).
//! * **Completeness** holds whenever `dw(F) ≤ k` (Theorem 1's proof).
//! * Running time is polynomial for fixed `k` (Proposition 2).

use crate::lemma1::mu_subtree;
use wdsparql_hom::GenTGraph;
use wdsparql_pebble::duplicator_wins;
use wdsparql_rdf::{Mapping, TripleIndex};
use wdsparql_tree::{subtree_children, subtree_pat, subtree_vars, Wdpf, Wdpt};

/// One tree of the Theorem 1 loop. `k` is the domination-width bound; the
/// pebble game is played with `k + 1` pebbles.
pub fn check_tree_pebble(t: &Wdpt, g: &dyn TripleIndex, mu: &Mapping, k: usize) -> bool {
    let Some(st) = mu_subtree(t, g, mu) else {
        return false;
    };
    let x = subtree_vars(t, &st);
    let base = subtree_pat(t, &st);
    subtree_children(t, &st).into_iter().all(|n| {
        let src = GenTGraph::new(base.union(t.pat(n)), x.iter().copied());
        !duplicator_wins(&src, g, mu, k + 1)
    })
}

/// The full Theorem 1 algorithm on a forest: `µ ∈ ⟦F⟧_G`, correct whenever
/// `dw(F) ≤ k`; always sound (accepting implies membership).
pub fn check_forest_pebble(f: &Wdpf, g: &dyn TripleIndex, mu: &Mapping, k: usize) -> bool {
    f.trees.iter().any(|t| check_tree_pebble(t, g, mu, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::check_forest;
    use wdsparql_algebra::parse_pattern;
    use wdsparql_rdf::RdfGraph;
    use wdsparql_rdf::Triple;

    fn forest(text: &str) -> Wdpf {
        Wdpf::from_pattern(&parse_pattern(text).unwrap()).unwrap()
    }

    #[test]
    fn agrees_with_naive_on_bounded_width_pattern() {
        // Path-shaped OPTs: dw = bw = 1, so k = 1 (2 pebbles) is complete.
        let f = forest("(?x, p, ?y) OPT ((?y, q, ?z) OPT (?z, q, ?w))");
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("b", "q", "c"),
            ("c", "q", "d"),
            ("e", "p", "f"),
        ]);
        for mu in [
            Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c"), ("w", "d")]),
            Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c")]),
            Mapping::from_strs([("x", "a"), ("y", "b")]),
            Mapping::from_strs([("x", "e"), ("y", "f")]),
            Mapping::from_strs([("x", "b"), ("y", "a")]),
            Mapping::new(),
        ] {
            assert_eq!(
                check_forest(&f, &g, &mu),
                check_forest_pebble(&f, &g, &mu, 1),
                "µ = {mu}"
            );
        }
    }

    #[test]
    fn soundness_holds_even_below_the_width() {
        // A clique-child query of bw 2 evaluated with k = 1: the pebble
        // algorithm may reject members, but must never accept a
        // non-member (soundness is unconditional).
        let f = forest(
            "(?x, p, ?y) OPT (((?y, r, ?o1) AND (?o1, r, ?o2)) AND \
             ((?o2, r, ?o3) AND ((?o1, r, ?o3) AND (?y, r, ?o3))))",
        );
        let mut g = RdfGraph::new();
        g.insert(Triple::from_strs("a", "p", "b"));
        // r-edges forming a structure with no suitable triangle extension.
        for (s, o) in [("b", "u"), ("u", "v"), ("v", "w"), ("b", "w")] {
            g.insert(Triple::from_strs(s, "r", o));
        }
        let candidates = [
            Mapping::from_strs([("x", "a"), ("y", "b")]),
            Mapping::from_strs([
                ("x", "a"),
                ("y", "b"),
                ("o1", "u"),
                ("o2", "v"),
                ("o3", "w"),
            ]),
            Mapping::from_strs([("x", "b"), ("y", "a")]),
        ];
        for mu in &candidates {
            if check_forest_pebble(&f, &g, mu, 1) {
                assert!(check_forest(&f, &g, mu), "false accept for {mu}");
            }
        }
    }

    #[test]
    fn higher_k_restores_completeness() {
        // Same clique-child query with k = 2 (3 pebbles ≥ ctw + 1): exact.
        let f = forest("(?x, p, ?y) OPT (((?y, r, ?o1) AND (?o1, r, ?o2)) AND (?o2, r, ?o1))");
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("d", "r", "c"),
        ]);
        for mu in [
            Mapping::from_strs([("x", "a"), ("y", "b")]),
            Mapping::from_strs([("x", "a"), ("y", "b"), ("o1", "c"), ("o2", "d")]),
        ] {
            assert_eq!(
                check_forest(&f, &g, &mu),
                check_forest_pebble(&f, &g, &mu, 2),
                "µ = {mu}"
            );
        }
    }

    #[test]
    fn rejects_when_no_tree_matches() {
        let f = forest("(?x, p, ?y)");
        let g = RdfGraph::from_strs([("a", "q", "b")]);
        assert!(!check_forest_pebble(
            &f,
            &g,
            &Mapping::from_strs([("x", "a"), ("y", "b")]),
            1
        ));
    }
}
