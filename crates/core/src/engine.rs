//! The public evaluation API: [`Query`] (a parsed, translated, analysable
//! well-designed pattern) and [`Engine`] (an RDF graph with evaluation
//! strategies).

use crate::enumerate::{enumerate_forest_budgeted, enumerate_forest_with};
use crate::naive::check_forest;
use crate::pebble_eval::check_forest_pebble;
use std::fmt;
use std::sync::{Arc, OnceLock};
use wdsparql_algebra::{
    eval as reference_eval, filter_solutions, parse_pattern, FilterExpr, GraphPattern, SolutionSet,
};
use wdsparql_rdf::{ExecError, Mapping, QueryBudget, RdfGraph, TripleIndex};
use wdsparql_store::{JoinStrategy, ShardedStore, TripleStore};
use wdsparql_tree::{TranslateError, Wdpf};
use wdsparql_width::{branch_treewidth_forest, domination_width, local_width_forest};

/// Errors building a [`Query`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    Parse(String),
    Translate(TranslateError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(e) => write!(f, "{e}"),
            QueryError::Translate(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A well-designed query: the surface pattern plus its wdPF translation
/// and lazily-computed width measures.
pub struct Query {
    pattern: GraphPattern,
    forest: Wdpf,
    dw: OnceLock<usize>,
    bw: OnceLock<usize>,
}

impl Query {
    /// Parses and translates a well-designed pattern. Accepts both the
    /// paper's parenthesised syntax and the SPARQL-style curly syntax
    /// (`SELECT * WHERE { ... }` / `{ ... }`).
    pub fn parse(text: &str) -> Result<Query, QueryError> {
        let trimmed = text.trim_start();
        let pattern = if trimmed.starts_with('{')
            || trimmed
                .get(..6)
                .is_some_and(|p| p.eq_ignore_ascii_case("select"))
        {
            wdsparql_algebra::parse_sparql(text)
        } else {
            parse_pattern(text)
        }
        .map_err(|e| QueryError::Parse(e.to_string()))?;
        Query::from_pattern(pattern)
    }

    /// Parses a SPARQL-style query that may carry top-level `FILTER`
    /// clauses, returning the query together with the filter conjunction
    /// (`FilterExpr::True` when there is none). Evaluate with
    /// [`Engine::evaluate_filtered`].
    pub fn parse_with_filter(text: &str) -> Result<(Query, FilterExpr), QueryError> {
        let (pattern, _, filter) = wdsparql_algebra::parse_sparql_filtered(text)
            .map_err(|e| QueryError::Parse(e.to_string()))?;
        Ok((Query::from_pattern(pattern)?, filter))
    }

    /// Wraps an already-built pattern (checked for well-designedness).
    pub fn from_pattern(pattern: GraphPattern) -> Result<Query, QueryError> {
        let forest = Wdpf::from_pattern(&pattern).map_err(QueryError::Translate)?;
        Ok(Query {
            pattern,
            forest,
            dw: OnceLock::new(),
            bw: OnceLock::new(),
        })
    }

    /// Wraps a hand-built forest (the pattern is reconstructed).
    pub fn from_forest(forest: Wdpf) -> Query {
        let pattern = wdsparql_tree::pattern_from_wdpf(&forest);
        Query {
            pattern,
            forest,
            dw: OnceLock::new(),
            bw: OnceLock::new(),
        }
    }

    pub fn pattern(&self) -> &GraphPattern {
        &self.pattern
    }

    pub fn forest(&self) -> &Wdpf {
        &self.forest
    }

    /// `dw(P)` (cached; exponential in the query size).
    pub fn domination_width(&self) -> usize {
        *self.dw.get_or_init(|| domination_width(&self.forest))
    }

    /// `bw(P)` (cached; meaningful for UNION-free queries, where it equals
    /// `dw(P)` by Proposition 5).
    pub fn branch_treewidth(&self) -> usize {
        *self
            .bw
            .get_or_init(|| branch_treewidth_forest(&self.forest))
    }

    /// The local-tractability width (Letelier et al.).
    pub fn local_width(&self) -> usize {
        local_width_forest(&self.forest)
    }

    pub fn is_union_free(&self) -> bool {
        self.pattern.is_union_free()
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.pattern.fmt(f)
    }
}

/// How to decide `µ ∈ ⟦P⟧_G`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Bottom-up reference semantics (exponential; ground truth).
    Reference,
    /// Lemma-1 algorithm with exact homomorphism checks (coNP).
    Naive,
    /// Theorem-1 algorithm with the (k+1)-pebble game; complete iff
    /// `dw(P) ≤ k`, sound always.
    Pebble { k: usize },
    /// `Pebble` with `k = dw(P)` — polynomial for any class of bounded
    /// domination width, exact for every query (Theorem 3).
    Auto,
}

/// The data backend an [`Engine`] evaluates against.
enum Backend {
    /// An in-process [`RdfGraph`] with hash-indexed pattern matching
    /// (boxed: a graph is an order of magnitude larger than the store
    /// handle).
    Memory(Box<RdfGraph>),
    /// A shared [`TripleStore`]: the matcher delegates to the store's
    /// dictionary-encoded sorted-permutation ranges, under the store's
    /// read lock.
    Store(Arc<TripleStore>),
    /// A shared [`ShardedStore`]: the matcher scatter-gathers over the
    /// hash-partitioned shards through a
    /// [`wdsparql_store::ShardedSnapshot`] — subject-bound patterns
    /// route to one shard, the rest fan out.
    Sharded(Arc<ShardedStore>),
}

/// An RDF data backend together with evaluation entry points.
pub struct Engine {
    backend: Backend,
    /// How each tree node's query core is joined during enumeration
    /// ([`JoinStrategy::Auto`] by default: cyclic cores take the
    /// worst-case-optimal leapfrog join, acyclic ones the hom solver's
    /// fail-first search).
    strategy: JoinStrategy,
}

impl Engine {
    pub fn new(graph: RdfGraph) -> Engine {
        Engine {
            backend: Backend::Memory(Box::new(graph)),
            strategy: JoinStrategy::default(),
        }
    }

    /// A store-backed engine: every triple-pattern match inside the
    /// evaluation algorithms resolves through the store's
    /// [`wdsparql_store::EncodedGraph`] range lookups instead of
    /// [`RdfGraph`]'s hash indexes. The store stays shared — concurrent
    /// queries and bulk loads through other handles remain possible.
    pub fn from_store(store: Arc<TripleStore>) -> Engine {
        Engine {
            backend: Backend::Store(store),
            strategy: JoinStrategy::default(),
        }
    }

    /// A sharded-store-backed engine: triple-pattern matches resolve
    /// through a scatter-gather snapshot of the hash-partitioned shards
    /// (subject-bound patterns touch exactly one shard). The store stays
    /// shared — concurrent queries and scattered bulk loads through
    /// other handles remain possible.
    pub fn from_sharded_store(store: Arc<ShardedStore>) -> Engine {
        Engine {
            backend: Backend::Sharded(store),
            strategy: JoinStrategy::default(),
        }
    }

    /// Builder-style [`JoinStrategy`] override for [`Engine::evaluate`] /
    /// [`Engine::count`]'s per-node query cores.
    pub fn with_join_strategy(mut self, strategy: JoinStrategy) -> Engine {
        self.strategy = strategy;
        self
    }

    /// Sets how enumeration joins each node's query core.
    pub fn set_join_strategy(&mut self, strategy: JoinStrategy) {
        self.strategy = strategy;
    }

    /// The configured per-node [`JoinStrategy`].
    pub fn join_strategy(&self) -> JoinStrategy {
        self.strategy
    }

    /// The in-memory graph of a [`Engine::new`]-built engine, or `None`
    /// for a store-backed one — use [`Engine::with_index`],
    /// [`Engine::store`] or [`Engine::sharded_store`] there.
    pub fn graph(&self) -> Option<&RdfGraph> {
        match &self.backend {
            Backend::Memory(g) => Some(g),
            Backend::Store(_) | Backend::Sharded(_) => None,
        }
    }

    /// The shared store of a [`Engine::from_store`]-built engine.
    pub fn store(&self) -> Option<&Arc<TripleStore>> {
        match &self.backend {
            Backend::Memory(_) | Backend::Sharded(_) => None,
            Backend::Store(s) => Some(s),
        }
    }

    /// The shared store of a [`Engine::from_sharded_store`]-built engine.
    pub fn sharded_store(&self) -> Option<&Arc<ShardedStore>> {
        match &self.backend {
            Backend::Memory(_) | Backend::Store(_) => None,
            Backend::Sharded(s) => Some(s),
        }
    }

    /// Runs `f` against the backend's [`TripleIndex`] view (for a store
    /// backend, on a lock-free snapshot).
    pub fn with_index<R>(&self, f: impl FnOnce(&dyn TripleIndex) -> R) -> R {
        match &self.backend {
            Backend::Memory(g) => f(g.as_ref()),
            Backend::Store(s) => s.with_index(|g| f(g)),
            Backend::Sharded(s) => s.with_index(|snap| f(snap)),
        }
    }

    /// Decides `µ ∈ ⟦P⟧_G` with the requested strategy.
    pub fn check(&self, q: &Query, mu: &Mapping, strategy: Strategy) -> bool {
        self.with_index(|g| match strategy {
            Strategy::Reference => reference_eval(q.pattern(), g).contains(mu),
            Strategy::Naive => check_forest(q.forest(), g, mu),
            Strategy::Pebble { k } => check_forest_pebble(q.forest(), g, mu, k),
            Strategy::Auto => {
                let k = q.domination_width();
                check_forest_pebble(q.forest(), g, mu, k)
            }
        })
    }

    /// Enumerates all solutions `⟦P⟧_G`. Each tree node's query core is
    /// joined per the engine's [`JoinStrategy`] — under the default
    /// `Auto`, cyclic cores (triangles, cliques) run through the
    /// worst-case-optimal leapfrog join over the backend's tries.
    pub fn evaluate(&self, q: &Query) -> SolutionSet {
        self.with_index(|g| enumerate_forest_with(q.forest(), g, self.strategy))
    }

    /// As [`Engine::evaluate`], under a [`QueryBudget`]: enumeration
    /// checkpoints the budget throughout the OPT/UNION forest walk (and
    /// inside the leapfrog join's seek loops), so a deadline or a
    /// tripped cancellation token surfaces as a typed [`ExecError`]
    /// instead of running the query to completion.
    pub fn evaluate_budgeted(
        &self,
        q: &Query,
        budget: &QueryBudget,
    ) -> Result<SolutionSet, ExecError> {
        self.with_index(|g| enumerate_forest_budgeted(q.forest(), g, self.strategy, budget))
    }

    /// Enumerates `⟦P FILTER R⟧_G` for a top-level filter (error-as-false
    /// semantics; the §5 FILTER extension). Note that filtering breaks
    /// the width-based tractability guarantees — see
    /// `wdsparql-hardness::emb`.
    pub fn evaluate_filtered(&self, q: &Query, filter: &FilterExpr) -> SolutionSet {
        filter_solutions(self.evaluate(q), filter)
    }

    /// Counts the solutions `|⟦P⟧_G|` (the counting variant discussed in
    /// §5; computed via enumeration).
    pub fn count(&self, q: &Query) -> usize {
        self.evaluate(q).len()
    }

    /// Produces a membership certificate: the Lemma 1 witness subtree on
    /// acceptance, or a per-tree rejection reason (with a counterexample
    /// extension where applicable).
    pub fn explain(&self, q: &Query, mu: &Mapping) -> crate::explain::Explanation {
        self.with_index(|g| crate::explain::explain_forest(q.forest(), g, mu))
    }

    /// A width/tractability report for the query (used by the CLI and the
    /// examples).
    pub fn analyze(&self, q: &Query) -> WidthReport {
        WidthReport {
            union_free: q.is_union_free(),
            trees: q.forest().len(),
            nodes: q.forest().iter().map(|t| t.len()).sum(),
            domination_width: q.domination_width(),
            branch_treewidth: q.branch_treewidth(),
            local_width: q.local_width(),
        }
    }
}

/// Width measures of a query, as reported by [`Engine::analyze`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WidthReport {
    pub union_free: bool,
    pub trees: usize,
    pub nodes: usize,
    pub domination_width: usize,
    pub branch_treewidth: usize,
    pub local_width: usize,
}

impl fmt::Display for WidthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "union-free: {} | trees: {} | nodes: {}",
            self.union_free, self.trees, self.nodes
        )?;
        writeln!(f, "domination width dw(P) = {}", self.domination_width)?;
        writeln!(f, "branch treewidth bw(P) = {}", self.branch_treewidth)?;
        write!(f, "local width            = {}", self.local_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> Engine {
        Engine::new(RdfGraph::from_strs([
            ("a", "p", "b"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
        ]))
    }

    #[test]
    fn strategies_agree_on_bounded_width_query() {
        let e = engine();
        let q =
            Query::parse("(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))")
                .unwrap();
        let sols = e.evaluate(&q);
        assert!(!sols.is_empty());
        for mu in &sols {
            for s in [
                Strategy::Reference,
                Strategy::Naive,
                Strategy::Pebble { k: 1 },
                Strategy::Auto,
            ] {
                assert!(e.check(&q, mu, s), "{s:?} rejected {mu}");
            }
        }
        let non = Mapping::from_strs([("x", "a"), ("y", "b")]);
        for s in [
            Strategy::Reference,
            Strategy::Naive,
            Strategy::Pebble { k: 1 },
            Strategy::Auto,
        ] {
            assert!(!e.check(&q, &non, s), "{s:?} accepted non-solution");
        }
    }

    #[test]
    fn analyze_reports_widths() {
        let e = engine();
        let q = Query::parse("((?x, p, ?y) OPT (?y, r, ?u))").unwrap();
        let r = e.analyze(&q);
        assert!(r.union_free);
        assert_eq!(r.trees, 1);
        assert_eq!(r.nodes, 2);
        assert_eq!(r.domination_width, 1);
        assert_eq!(r.branch_treewidth, 1);
        assert_eq!(r.local_width, 1);
        // Proposition 5 on this query.
        assert_eq!(r.domination_width, r.branch_treewidth);
        let text = r.to_string();
        assert!(text.contains("dw(P) = 1"));
    }

    #[test]
    fn both_surface_syntaxes_parse_to_the_same_query() {
        let paper = Query::parse("(?x, p, ?y) OPT (?y, r, ?u)").unwrap();
        let sparql = Query::parse("SELECT * WHERE { ?x p ?y OPTIONAL { ?y r ?u } }").unwrap();
        let curly = Query::parse("{ ?x p ?y OPTIONAL { ?y r ?u } }").unwrap();
        assert_eq!(paper.pattern(), sparql.pattern());
        assert_eq!(paper.pattern(), curly.pattern());
        let e = engine();
        assert_eq!(e.evaluate(&paper), e.evaluate(&sparql));
    }

    #[test]
    fn count_and_explain_are_consistent() {
        let e = engine();
        let q = Query::parse("{ ?x p ?y OPTIONAL { ?y r ?u } }").unwrap();
        let sols = e.evaluate(&q);
        assert_eq!(e.count(&q), sols.len());
        for mu in &sols {
            assert!(e.explain(&q, mu).is_member());
        }
        assert!(!e
            .explain(&q, &Mapping::from_strs([("x", "zzz"), ("y", "zzz")]))
            .is_member());
    }

    #[test]
    fn query_errors_are_reported() {
        assert!(matches!(Query::parse("(?x, p"), Err(QueryError::Parse(_))));
        assert!(matches!(
            Query::parse("((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?z) AND (?z, r, ?o2))"),
            Err(QueryError::Translate(_))
        ));
    }

    #[test]
    fn filtered_queries_parse_and_evaluate() {
        let e = engine();
        let (q, f) =
            Query::parse_with_filter("{ ?x p ?y OPTIONAL { ?y r ?u } FILTER(BOUND(?u)) }").unwrap();
        let filtered = e.evaluate_filtered(&q, &f);
        let unfiltered = e.evaluate(&q);
        assert!(filtered.len() < unfiltered.len());
        assert!(filtered
            .iter()
            .all(|mu| mu.contains(wdsparql_rdf::Variable::new("u"))));
        // A filter-free query round-trips through the same entry point.
        let (q2, f2) = Query::parse_with_filter("{ ?x p ?y }").unwrap();
        assert_eq!(f2, wdsparql_algebra::FilterExpr::True);
        assert_eq!(e.evaluate_filtered(&q2, &f2), e.evaluate(&q2));
    }

    #[test]
    fn store_backed_engine_agrees_with_memory_backend() {
        let graph = engine().graph().expect("memory-backed engine").clone();
        let store = Arc::new(TripleStore::from_rdf(&graph));
        let mem = Engine::new(graph);
        let via_store = Engine::from_store(Arc::clone(&store));
        assert!(via_store.store().is_some());
        let q =
            Query::parse("(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))")
                .unwrap();
        let sols = via_store.evaluate(&q);
        assert_eq!(sols, mem.evaluate(&q));
        assert!(!sols.is_empty());
        for mu in &sols {
            for s in [
                Strategy::Reference,
                Strategy::Naive,
                Strategy::Pebble { k: 1 },
                Strategy::Auto,
            ] {
                assert!(via_store.check(&q, mu, s), "{s:?} rejected {mu}");
            }
            assert!(via_store.explain(&q, mu).is_member());
        }
        assert_eq!(via_store.count(&q), mem.count(&q));
        // A bulk load through the shared store is visible immediately.
        store.bulk_load([wdsparql_rdf::Triple::from_strs("g", "p", "h")]);
        assert_eq!(via_store.count(&q), mem.count(&q) + 1);
    }

    #[test]
    fn sharded_backed_engine_agrees_with_memory_backend() {
        let graph = engine().graph().expect("memory-backed engine").clone();
        let store = Arc::new(ShardedStore::from_rdf(3, &graph));
        let mem = Engine::new(graph);
        let via_sharded = Engine::from_sharded_store(Arc::clone(&store));
        assert!(via_sharded.sharded_store().is_some());
        assert!(via_sharded.store().is_none());
        assert!(via_sharded.graph().is_none());
        let q =
            Query::parse("(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))")
                .unwrap();
        let sols = via_sharded.evaluate(&q);
        assert_eq!(sols, mem.evaluate(&q));
        assert!(!sols.is_empty());
        for mu in &sols {
            for s in [
                Strategy::Reference,
                Strategy::Naive,
                Strategy::Pebble { k: 1 },
                Strategy::Auto,
            ] {
                assert!(via_sharded.check(&q, mu, s), "{s:?} rejected {mu}");
            }
        }
        assert_eq!(via_sharded.count(&q), mem.count(&q));
        // A scattered bulk load through the shared store is visible
        // immediately.
        store.bulk_load([wdsparql_rdf::Triple::from_strs("g", "p", "h")]);
        assert_eq!(via_sharded.count(&q), mem.count(&q) + 1);
    }

    #[test]
    fn evaluate_budgeted_agrees_and_honours_deadlines() {
        let e = engine();
        let q =
            Query::parse("(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))")
                .unwrap();
        assert_eq!(
            e.evaluate_budgeted(&q, &QueryBudget::unlimited()),
            Ok(e.evaluate(&q))
        );
        assert_eq!(
            e.evaluate_budgeted(&q, &QueryBudget::with_deadline(std::time::Duration::ZERO)),
            Err(ExecError::DeadlineExceeded)
        );
    }

    #[test]
    fn evaluate_matches_reference() {
        let e = engine();
        let q = Query::parse("((?x, p, ?y) OPT (?y, r, ?u)) UNION ((?z, q, ?x) OPT (?x, p, ?y))")
            .unwrap();
        let reference =
            wdsparql_algebra::eval(q.pattern(), e.graph().expect("memory-backed engine"));
        assert_eq!(e.evaluate(&q), reference);
    }
}
