//! The classical evaluation algorithm for wdPFs (Letelier et al.;
//! Pichler–Skritek): sound and complete for *all* well-designed forests,
//! but each child-extension test is an NP-complete homomorphism check —
//! this is the coNP algorithm whose restriction classes the paper
//! characterises.

use crate::lemma1::{child_extends, mu_subtree};
use wdsparql_rdf::{Mapping, TripleIndex};
use wdsparql_tree::{subtree_children, Wdpf, Wdpt};

/// `µ ∈ ⟦T⟧_G` by Lemma 1 with exact homomorphism tests.
pub fn check_tree(t: &Wdpt, g: &dyn TripleIndex, mu: &Mapping) -> bool {
    match mu_subtree(t, g, mu) {
        None => false,
        Some(st) => subtree_children(t, &st)
            .into_iter()
            .all(|n| !child_extends(t, g, n, mu)),
    }
}

/// `µ ∈ ⟦F⟧_G = ⟦T_1⟧_G ∪ ··· ∪ ⟦T_m⟧_G`.
pub fn check_forest(f: &Wdpf, g: &dyn TripleIndex, mu: &Mapping) -> bool {
    f.trees.iter().any(|t| check_tree(t, g, mu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::{eval, parse_pattern};
    use wdsparql_rdf::RdfGraph;
    use wdsparql_rdf::Triple;

    fn forest(text: &str) -> Wdpf {
        Wdpf::from_pattern(&parse_pattern(text).unwrap()).unwrap()
    }

    #[test]
    fn agrees_with_reference_semantics_on_example1() {
        let text = "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))";
        let p = parse_pattern(text).unwrap();
        let f = forest(text);
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
        ]);
        let reference = eval(&p, &g);
        // Every reference solution checks out...
        for mu in &reference {
            assert!(check_forest(&f, &g, mu), "missing {mu}");
        }
        // ...and near-miss mutations do not.
        let partial = Mapping::from_strs([("x", "a"), ("y", "b")]);
        assert!(!check_forest(&f, &g, &partial)); // must take the q-branch
        let wrong = Mapping::from_strs([("x", "b"), ("y", "a")]);
        assert!(!check_forest(&f, &g, &wrong));
    }

    #[test]
    fn union_forest_accepts_from_any_tree() {
        let f = forest("((?x, p, ?y) OPT (?y, q, ?z)) UNION ((?x, r, ?y) OPT (?y, q, ?z))");
        let g = RdfGraph::from_strs([("a", "p", "b"), ("c", "r", "d")]);
        assert!(check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "a"), ("y", "b")])
        ));
        assert!(check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "c"), ("y", "d")])
        ));
        assert!(!check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "a"), ("y", "d")])
        ));
    }

    #[test]
    fn maximality_is_enforced_per_tree() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]);
        // Bare (a, b) is not maximal: the OPT extends.
        assert!(!check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "a"), ("y", "b")])
        ));
        assert!(check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c")])
        ));
    }

    #[test]
    fn large_graph_spot_check() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let mut g = RdfGraph::new();
        for i in 0..200 {
            g.insert(Triple::from_strs(&format!("s{i}"), "p", &format!("t{i}")));
            if i % 2 == 0 {
                g.insert(Triple::from_strs(&format!("t{i}"), "q", &format!("u{i}")));
            }
        }
        assert!(check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "s1"), ("y", "t1")])
        ));
        assert!(!check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "s2"), ("y", "t2")])
        ));
        assert!(check_forest(
            &f,
            &g,
            &Mapping::from_strs([("x", "s2"), ("y", "t2"), ("z", "u2")])
        ));
    }
}
