//! Counting and instrumented enumeration — the two evaluation variants
//! the paper's §5 lists as open directions beyond membership testing
//! (citing Kroll–Pichler–Skritek for enumeration and Pichler–Skritek for
//! the hardness of counting).
//!
//! Counting solutions of a wdPT is #·P-hard in general, so [`count_forest`]
//! and friends go through enumeration; their value here is as ground
//! truth and as the measurement harness for experiment E14 (enumeration
//! delay on bounded- vs unbounded-width families).

use crate::enumerate::enumerate_forest;
use std::collections::BTreeMap;
use wdsparql_algebra::SolutionSet;
use wdsparql_hom::all_homs_into_graph;
use wdsparql_rdf::{Mapping, TripleIndex, Variable};
use wdsparql_tree::{NodeId, Wdpf, Wdpt};

/// `|⟦F⟧_G|` (distinct mappings; trees of a forest may overlap).
pub fn count_forest(f: &Wdpf, g: &dyn TripleIndex) -> usize {
    enumerate_forest(f, g).len()
}

/// Solution counts grouped by mapping domain. Distinct domains arise from
/// distinct witness subtrees, so this histogram shows which OPT-extension
/// patterns actually fire on `G`. Keys are sorted by variable *name* so
/// the histogram is stable across runs (variable ids depend on interning
/// order).
pub fn count_by_domain(f: &Wdpf, g: &dyn TripleIndex) -> BTreeMap<Vec<Variable>, usize> {
    let mut out: BTreeMap<Vec<Variable>, usize> = BTreeMap::new();
    for mu in &enumerate_forest(f, g) {
        let mut key: Vec<Variable> = mu.domain().collect();
        key.sort_by_key(|v| v.name());
        *out.entry(key).or_insert(0) += 1;
    }
    out
}

/// Work counters for one instrumented enumeration run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EnumStats {
    /// Solutions emitted (before cross-tree deduplication).
    pub emitted: usize,
    /// Distinct solutions after deduplication.
    pub solutions: usize,
    /// Homomorphism-solver invocations.
    pub hom_calls: usize,
    /// Tree-node visits (the traversal's step counter).
    pub steps: usize,
    /// Largest number of steps between consecutive emission batches
    /// (including the lead-in to the first batch and the tail after the
    /// last) — the empirical *delay* of the enumeration. Solutions are
    /// emitted once their root homomorphism's subtree has been fully
    /// explored, so the delay measures the work per root-level candidate.
    pub max_delay_steps: usize,
}

struct Walker<'a> {
    g: &'a dyn TripleIndex,
    stats: EnumStats,
    last_emit_steps: usize,
    out: SolutionSet,
}

impl<'a> Walker<'a> {
    fn tick(&mut self) {
        self.stats.steps += 1;
    }

    fn emit(&mut self, mu: Mapping) {
        self.stats.emitted += 1;
        let delay = self.stats.steps - self.last_emit_steps;
        self.stats.max_delay_steps = self.stats.max_delay_steps.max(delay);
        self.last_emit_steps = self.stats.steps;
        self.out.insert(mu);
    }

    /// Mirrors `enumerate::solutions_below`, with counters.
    fn solutions_below(&mut self, t: &Wdpt, n: NodeId, base: &Mapping) -> Vec<Mapping> {
        self.tick();
        self.stats.hom_calls += 1;
        let mut out = Vec::new();
        for nu in all_homs_into_graph(t.pat(n), self.g, base) {
            let combined = base
                .union(&nu)
                .expect("solver extensions agree with their fixed bindings");
            let mut partials = vec![combined.clone()];
            for &c in t.children(n) {
                let exts = self.solutions_below(t, c, &combined);
                if exts.is_empty() {
                    continue;
                }
                let mut next = Vec::with_capacity(partials.len() * exts.len());
                for p in &partials {
                    for e in &exts {
                        next.push(
                            p.union(e)
                                .expect("sibling extensions share only branch variables"),
                        );
                    }
                }
                partials = next;
            }
            out.extend(partials);
        }
        out
    }
}

/// Enumerates `⟦F⟧_G` while recording work counters, including the
/// empirical per-solution delay.
pub fn enumerate_with_stats(f: &Wdpf, g: &dyn TripleIndex) -> (SolutionSet, EnumStats) {
    let mut w = Walker {
        g,
        stats: EnumStats::default(),
        last_emit_steps: 0,
        out: SolutionSet::new(),
    };
    for t in &f.trees {
        // Mirror `solutions_below` at the root, but emit each root
        // homomorphism's batch as soon as its subtree is explored — this
        // is what makes `max_delay_steps` a per-candidate measure rather
        // than the whole run.
        w.tick();
        w.stats.hom_calls += 1;
        let empty = Mapping::new();
        for nu in all_homs_into_graph(t.pat(t.root()), g, &empty) {
            let mut partials = vec![nu.clone()];
            for &c in t.children(t.root()) {
                let exts = w.solutions_below(t, c, &nu);
                if exts.is_empty() {
                    continue;
                }
                let mut next = Vec::with_capacity(partials.len() * exts.len());
                for p in &partials {
                    for e in &exts {
                        next.push(
                            p.union(e)
                                .expect("sibling extensions share only branch variables"),
                        );
                    }
                }
                partials = next;
            }
            for mu in partials {
                w.emit(mu);
            }
        }
    }
    // Tail delay: steps after the last emission also count.
    let tail = w.stats.steps - w.last_emit_steps;
    w.stats.max_delay_steps = w.stats.max_delay_steps.max(tail);
    w.stats.solutions = w.out.len();
    (w.out, w.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::parse_pattern;
    use wdsparql_rdf::RdfGraph;

    fn forest(text: &str) -> Wdpf {
        Wdpf::from_pattern(&parse_pattern(text).unwrap()).unwrap()
    }

    fn sample_graph() -> RdfGraph {
        RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
        ])
    }

    #[test]
    fn counts_match_enumeration() {
        let g = sample_graph();
        for text in [
            "(?x, p, ?y)",
            "((?x, p, ?y) OPT (?y, r, ?u))",
            "((?x, p, ?y) OPT (?y, r, ?u)) UNION (?x, r, ?y)",
        ] {
            let f = forest(text);
            assert_eq!(
                count_forest(&f, &g),
                enumerate_forest(&f, &g).len(),
                "{text}"
            );
        }
    }

    #[test]
    fn domain_histogram_partitions_the_solutions() {
        let g = sample_graph();
        let f = forest("((?x, p, ?y) OPT (?y, r, ?u))");
        let by_domain = count_by_domain(&f, &g);
        // Domains: {x,y} (no r-extension) and {x,y,u} (extended).
        assert_eq!(by_domain.len(), 2);
        assert_eq!(by_domain.values().sum::<usize>(), count_forest(&f, &g));
        let vars =
            |names: &[&str]| -> Vec<Variable> { names.iter().map(|n| Variable::new(n)).collect() };
        // Keys are name-sorted.
        assert_eq!(by_domain[&vars(&["x", "y"])], 1); // (e,p,f): f has no r-edge
        assert_eq!(by_domain[&vars(&["u", "x", "y"])], 2);
    }

    #[test]
    fn stats_agree_with_plain_enumeration() {
        let g = sample_graph();
        for text in [
            "(?x, p, ?y)",
            "((?x, p, ?y) OPT (?y, r, ?u)) UNION (?x, r, ?y)",
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
        ] {
            let f = forest(text);
            let (sols, stats) = enumerate_with_stats(&f, &g);
            assert_eq!(sols, enumerate_forest(&f, &g), "{text}");
            assert_eq!(stats.solutions, sols.len());
            assert!(stats.emitted >= stats.solutions);
            assert!(stats.hom_calls >= 1);
            assert!(stats.steps >= f.trees.len());
        }
    }

    #[test]
    fn delay_covers_leading_and_trailing_work() {
        // A graph with no solutions: all steps are 'tail' delay.
        let f = forest("(?x, p, ?y)");
        let g = RdfGraph::from_strs([("a", "q", "b")]);
        let (sols, stats) = enumerate_with_stats(&f, &g);
        assert!(sols.is_empty());
        assert_eq!(stats.emitted, 0);
        assert_eq!(stats.max_delay_steps, stats.steps);
    }

    #[test]
    fn duplicate_solutions_across_trees_are_deduplicated() {
        let f = forest("(?x, p, ?y) UNION (?x, p, ?y)");
        let g = RdfGraph::from_strs([("a", "p", "b")]);
        let (sols, stats) = enumerate_with_stats(&f, &g);
        assert_eq!(sols.len(), 1);
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.solutions, 1);
    }
}
