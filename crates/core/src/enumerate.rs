//! Full solution enumeration `⟦T⟧_G` / `⟦F⟧_G` over pattern trees.
//!
//! Works top-down from the root: for a homomorphism of the current node
//! (compatible with the bindings accumulated on its branch), each child
//! either has no compatible extension (it is skipped — and, by Lemma 1,
//! *must* be skipped) or contributes one of its recursively-maximal
//! extensions (it *must* extend). Sibling subtrees share no private
//! variables (condition (3) of wdPTs), so their extensions combine by
//! cartesian product.

use wdsparql_algebra::SolutionSet;
use wdsparql_hom::{all_homs_into_graph, TGraph};
use wdsparql_rdf::{ExecError, Mapping, QueryBudget, SolutionStream, TripleIndex, TriplePattern};
use wdsparql_store::{bgp_is_cyclic, JoinStrategy, WcoStream};
use wdsparql_tree::{NodeId, Wdpf, Wdpt};

/// Enumerates `⟦T⟧_G` (pairwise node joins — the hom solver's
/// fail-first search).
pub fn enumerate_tree(t: &Wdpt, g: &dyn TripleIndex) -> SolutionSet {
    enumerate_tree_with(t, g, JoinStrategy::Pairwise)
}

/// Enumerates `⟦F⟧_G = ⋃_i ⟦T_i⟧_G` (pairwise node joins).
pub fn enumerate_forest(f: &Wdpf, g: &dyn TripleIndex) -> SolutionSet {
    enumerate_forest_with(f, g, JoinStrategy::Pairwise)
}

/// As [`enumerate_tree`], with a [`JoinStrategy`] for the per-node query
/// cores (see [`enumerate_forest_with`]).
pub fn enumerate_tree_with(t: &Wdpt, g: &dyn TripleIndex, strategy: JoinStrategy) -> SolutionSet {
    enumerate_tree_budgeted(t, g, strategy, &QueryBudget::unlimited())
        .expect("an unlimited budget never fails a checkpoint")
}

/// As [`enumerate_forest`], with a [`JoinStrategy`] knob for the
/// per-node query cores: each node's pattern set is a BGP, and under
/// `Wco`/`Auto` the ones whose *bound* core is cyclic evaluate through
/// the store's worst-case-optimal leapfrog join instead of the hom
/// solver's backtracking search. The branch bindings shrink the core
/// first — a triangle with one variable already bound is no longer
/// cyclic, so `Auto` leaves it on the fail-first path.
pub fn enumerate_forest_with(f: &Wdpf, g: &dyn TripleIndex, strategy: JoinStrategy) -> SolutionSet {
    enumerate_forest_budgeted(f, g, strategy, &QueryBudget::unlimited())
        .expect("an unlimited budget never fails a checkpoint")
}

/// As [`enumerate_tree_with`], under a [`QueryBudget`]: enumeration
/// checkpoints once per node-extension step (and the leapfrog join
/// checkpoints inside its seek loops), so a deadline or cancellation
/// surfaces as a typed [`ExecError`] instead of running to completion.
pub fn enumerate_tree_budgeted(
    t: &Wdpt,
    g: &dyn TripleIndex,
    strategy: JoinStrategy,
    budget: &QueryBudget,
) -> Result<SolutionSet, ExecError> {
    Ok(
        solutions_below(t, g, t.root(), &Mapping::new(), strategy, budget)?
            .into_iter()
            .collect(),
    )
}

/// As [`enumerate_forest_with`], under a [`QueryBudget`] (see
/// [`enumerate_tree_budgeted`]).
pub fn enumerate_forest_budgeted(
    f: &Wdpf,
    g: &dyn TripleIndex,
    strategy: JoinStrategy,
    budget: &QueryBudget,
) -> Result<SolutionSet, ExecError> {
    let mut out = SolutionSet::new();
    for t in &f.trees {
        out.extend(enumerate_tree_budgeted(t, g, strategy, budget)?);
    }
    Ok(out)
}

/// The homomorphisms of one node's pattern set extending `base`, routed
/// by `strategy`: the hom solver (pairwise), or the WCOJ on the bound
/// core. Both return the full mapping on `vars(pat)` — the WCOJ path
/// joins the unbound variables and re-attaches the fixed ones.
///
/// `Auto` here routes on cyclicity of the bound shape *alone* — a pure
/// structural check (no index probes), because this runs once per
/// branch extension: the service planner's pairwise blow-up estimate
/// would re-walk candidate counts for every base mapping to guard a
/// case the fail-first hom search already handles well.
fn node_homs(
    pat: &TGraph,
    g: &dyn TripleIndex,
    base: &Mapping,
    strategy: JoinStrategy,
    budget: &QueryBudget,
) -> Result<Vec<Mapping>, ExecError> {
    if strategy != JoinStrategy::Pairwise {
        let bound: Vec<TriplePattern> = pat.iter().map(|t| t.apply_partial(base)).collect();
        if strategy == JoinStrategy::Wco || bgp_is_cyclic(&bound) {
            let fixed = base.restrict(pat.vars());
            return WcoStream::new(g, &bound, budget, false)
                .collect_limit(None)?
                .into_iter()
                .map(|mu| {
                    Ok(mu
                        .union(&fixed)
                        .expect("bound patterns cannot rebind fixed variables"))
                })
                .collect();
        }
    }
    Ok(all_homs_into_graph(pat, g, base))
}

/// All maximal solutions of the subtree rooted at `n`, each including the
/// bindings of `base` (the mapping accumulated along the branch) plus the
/// bindings of `n`'s own pattern and of every extendable descendant.
fn solutions_below(
    t: &Wdpt,
    g: &dyn TripleIndex,
    n: NodeId,
    base: &Mapping,
    strategy: JoinStrategy,
    budget: &QueryBudget,
) -> Result<Vec<Mapping>, ExecError> {
    // One checkpoint per branch extension: product blow-up happens one
    // node-extension at a time, so this bounds the work between checks.
    budget.check()?;
    let mut out = Vec::new();
    for nu in node_homs(t.pat(n), g, base, strategy, budget)? {
        let combined = base
            .union(&nu)
            .expect("solver extensions agree with their fixed bindings");
        // Children combine by product; a child with no extension is absent.
        let mut partials = vec![combined.clone()];
        for &c in t.children(n) {
            let exts = solutions_below(t, g, c, &combined, strategy, budget)?;
            if exts.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(partials.len() * exts.len());
            for p in &partials {
                budget.check()?;
                for e in &exts {
                    let u = p
                        .union(e)
                        .expect("sibling extensions share only branch variables");
                    next.push(u);
                }
            }
            partials = next;
        }
        out.extend(partials);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::{eval, parse_pattern};
    use wdsparql_rdf::RdfGraph;

    fn assert_matches_reference(text: &str, g: &RdfGraph) {
        let p = parse_pattern(text).unwrap();
        let f = Wdpf::from_pattern(&p).unwrap();
        assert_eq!(
            enumerate_forest(&f, g),
            eval(&p, g),
            "enumeration diverges from reference semantics for {text}"
        );
    }

    fn sample_graph() -> RdfGraph {
        RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
            ("w0", "q", "z0"),
            ("d", "q", "a"),
        ])
    }

    #[test]
    fn matches_reference_on_simple_patterns() {
        let g = sample_graph();
        assert_matches_reference("(?x, p, ?y)", &g);
        assert_matches_reference("((?x, p, ?y) AND (?y, r, ?u))", &g);
        assert_matches_reference("((?x, p, ?y) OPT (?y, r, ?u))", &g);
    }

    #[test]
    fn matches_reference_on_nested_opts() {
        let g = sample_graph();
        assert_matches_reference(
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
            &g,
        );
        assert_matches_reference("((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))", &g);
        assert_matches_reference("((?x, p, ?y) OPT ((?y, r, ?u) OPT (?u, r, ?v)))", &g);
    }

    #[test]
    fn matches_reference_on_unions() {
        let g = sample_graph();
        assert_matches_reference(
            "((?x, p, ?y) OPT (?y, r, ?u)) UNION ((?x, q, ?y) OPT (?y, p, ?u))",
            &g,
        );
    }

    #[test]
    fn sibling_children_multiply() {
        // Two independent OPT branches, both extendable twice.
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("b", "q", "c1"),
            ("b", "q", "c2"),
            ("a", "r", "d1"),
            ("a", "r", "d2"),
        ]);
        assert_matches_reference("(((?x, p, ?y) OPT (?y, q, ?u)) OPT (?x, r, ?v))", &g);
        let f = Wdpf::from_pattern(
            &parse_pattern("(((?x, p, ?y) OPT (?y, q, ?u)) OPT (?x, r, ?v))").unwrap(),
        )
        .unwrap();
        assert_eq!(enumerate_forest(&f, &g).len(), 4);
    }

    #[test]
    fn empty_graph_has_no_solutions() {
        let f = Wdpf::from_pattern(&parse_pattern("(?x, p, ?y)").unwrap()).unwrap();
        assert!(enumerate_forest(&f, &RdfGraph::new()).is_empty());
    }

    /// A budget that can never be satisfied fails every enumeration
    /// with the typed error before doing index work, and an unlimited
    /// budget reproduces the unbudgeted result exactly — across all
    /// three join strategies.
    #[test]
    fn budgeted_enumeration_types_its_failures_and_agrees_when_unlimited() {
        use std::time::Duration;
        use wdsparql_rdf::CancelToken;
        let g = sample_graph();
        let p =
            parse_pattern("(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))")
                .unwrap();
        let f = Wdpf::from_pattern(&p).unwrap();
        for strategy in [
            JoinStrategy::Pairwise,
            JoinStrategy::Wco,
            JoinStrategy::Auto,
        ] {
            let want = enumerate_forest_with(&f, &g, strategy);
            assert_eq!(
                enumerate_forest_budgeted(&f, &g, strategy, &QueryBudget::unlimited()),
                Ok(want),
                "{strategy}: unlimited budget must not change the result"
            );
            // Fresh budget per query: the first checkpoint is the one
            // call guaranteed to consult the clock.
            assert_eq!(
                enumerate_forest_budgeted(
                    &f,
                    &g,
                    strategy,
                    &QueryBudget::with_deadline(Duration::ZERO)
                ),
                Err(ExecError::DeadlineExceeded),
                "{strategy}: a zero deadline must fail typed"
            );
            let token = CancelToken::new();
            token.cancel();
            assert_eq!(
                enumerate_forest_budgeted(
                    &f,
                    &g,
                    strategy,
                    &QueryBudget::unlimited().and_cancel(token)
                ),
                Err(ExecError::Cancelled),
                "{strategy}: a tripped token must fail typed"
            );
        }
    }

    /// Every join strategy enumerates the same solution sets — on
    /// cyclic node cores (where `Auto` and `Wco` route through the
    /// leapfrog join) and on OPT trees whose branch bindings shrink the
    /// core.
    #[test]
    fn join_strategies_agree_on_cyclic_cores() {
        let g = RdfGraph::from_strs([
            ("1", "r", "2"),
            ("2", "r", "3"),
            ("1", "r", "3"),
            ("3", "r", "1"),
            ("2", "r", "4"),
            ("3", "q", "x"),
        ]);
        for text in [
            // A triangle core in the root.
            "((?a, r, ?b) AND (?b, r, ?c)) AND (?a, r, ?c)",
            // Triangle root with an OPT arm.
            "(((?a, r, ?b) AND (?b, r, ?c)) AND (?a, r, ?c)) OPT (?c, q, ?w)",
            // Acyclic chain under OPT (Auto keeps the hom solver).
            "(?a, r, ?b) OPT ((?b, r, ?c) AND (?c, q, ?w))",
        ] {
            let p = parse_pattern(text).unwrap();
            let f = Wdpf::from_pattern(&p).unwrap();
            let want = eval(&p, &g);
            assert!(!want.is_empty(), "{text} should have solutions");
            for strategy in [
                wdsparql_store::JoinStrategy::Pairwise,
                wdsparql_store::JoinStrategy::Wco,
                wdsparql_store::JoinStrategy::Auto,
            ] {
                assert_eq!(
                    enumerate_forest_with(&f, &g, strategy),
                    want,
                    "{strategy} diverges on {text}"
                );
            }
        }
    }
}
