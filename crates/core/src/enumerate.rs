//! Full solution enumeration `⟦T⟧_G` / `⟦F⟧_G` over pattern trees.
//!
//! Works top-down from the root: for a homomorphism of the current node
//! (compatible with the bindings accumulated on its branch), each child
//! either has no compatible extension (it is skipped — and, by Lemma 1,
//! *must* be skipped) or contributes one of its recursively-maximal
//! extensions (it *must* extend). Sibling subtrees share no private
//! variables (condition (3) of wdPTs), so their extensions combine by
//! cartesian product.

use wdsparql_algebra::SolutionSet;
use wdsparql_hom::all_homs_into_graph;
use wdsparql_rdf::{Mapping, TripleIndex};
use wdsparql_tree::{NodeId, Wdpf, Wdpt};

/// Enumerates `⟦T⟧_G`.
pub fn enumerate_tree(t: &Wdpt, g: &dyn TripleIndex) -> SolutionSet {
    solutions_below(t, g, t.root(), &Mapping::new())
        .into_iter()
        .collect()
}

/// Enumerates `⟦F⟧_G = ⋃_i ⟦T_i⟧_G`.
pub fn enumerate_forest(f: &Wdpf, g: &dyn TripleIndex) -> SolutionSet {
    let mut out = SolutionSet::new();
    for t in &f.trees {
        out.extend(enumerate_tree(t, g));
    }
    out
}

/// All maximal solutions of the subtree rooted at `n`, each including the
/// bindings of `base` (the mapping accumulated along the branch) plus the
/// bindings of `n`'s own pattern and of every extendable descendant.
fn solutions_below(t: &Wdpt, g: &dyn TripleIndex, n: NodeId, base: &Mapping) -> Vec<Mapping> {
    let mut out = Vec::new();
    for nu in all_homs_into_graph(t.pat(n), g, base) {
        let combined = base
            .union(&nu)
            .expect("solver extensions agree with their fixed bindings");
        // Children combine by product; a child with no extension is absent.
        let mut partials = vec![combined.clone()];
        for &c in t.children(n) {
            let exts = solutions_below(t, g, c, &combined);
            if exts.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(partials.len() * exts.len());
            for p in &partials {
                for e in &exts {
                    let u = p
                        .union(e)
                        .expect("sibling extensions share only branch variables");
                    next.push(u);
                }
            }
            partials = next;
        }
        out.extend(partials);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::{eval, parse_pattern};
    use wdsparql_rdf::RdfGraph;

    fn assert_matches_reference(text: &str, g: &RdfGraph) {
        let p = parse_pattern(text).unwrap();
        let f = Wdpf::from_pattern(&p).unwrap();
        assert_eq!(
            enumerate_forest(&f, g),
            eval(&p, g),
            "enumeration diverges from reference semantics for {text}"
        );
    }

    fn sample_graph() -> RdfGraph {
        RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
            ("w0", "q", "z0"),
            ("d", "q", "a"),
        ])
    }

    #[test]
    fn matches_reference_on_simple_patterns() {
        let g = sample_graph();
        assert_matches_reference("(?x, p, ?y)", &g);
        assert_matches_reference("((?x, p, ?y) AND (?y, r, ?u))", &g);
        assert_matches_reference("((?x, p, ?y) OPT (?y, r, ?u))", &g);
    }

    #[test]
    fn matches_reference_on_nested_opts() {
        let g = sample_graph();
        assert_matches_reference(
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
            &g,
        );
        assert_matches_reference("((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))", &g);
        assert_matches_reference("((?x, p, ?y) OPT ((?y, r, ?u) OPT (?u, r, ?v)))", &g);
    }

    #[test]
    fn matches_reference_on_unions() {
        let g = sample_graph();
        assert_matches_reference(
            "((?x, p, ?y) OPT (?y, r, ?u)) UNION ((?x, q, ?y) OPT (?y, p, ?u))",
            &g,
        );
    }

    #[test]
    fn sibling_children_multiply() {
        // Two independent OPT branches, both extendable twice.
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("b", "q", "c1"),
            ("b", "q", "c2"),
            ("a", "r", "d1"),
            ("a", "r", "d2"),
        ]);
        assert_matches_reference("(((?x, p, ?y) OPT (?y, q, ?u)) OPT (?x, r, ?v))", &g);
        let f = Wdpf::from_pattern(
            &parse_pattern("(((?x, p, ?y) OPT (?y, q, ?u)) OPT (?x, r, ?v))").unwrap(),
        )
        .unwrap();
        assert_eq!(enumerate_forest(&f, &g).len(), 4);
    }

    #[test]
    fn empty_graph_has_no_solutions() {
        let f = Wdpf::from_pattern(&parse_pattern("(?x, p, ?y)").unwrap()).unwrap();
        assert!(enumerate_forest(&f, &RdfGraph::new()).is_empty());
    }
}
