//! Full solution enumeration `⟦T⟧_G` / `⟦F⟧_G` over pattern trees.
//!
//! Works top-down from the root: for a homomorphism of the current node
//! (compatible with the bindings accumulated on its branch), each child
//! either has no compatible extension (it is skipped — and, by Lemma 1,
//! *must* be skipped) or contributes one of its recursively-maximal
//! extensions (it *must* extend). Sibling subtrees share no private
//! variables (condition (3) of wdPTs), so their extensions combine by
//! cartesian product.

use wdsparql_algebra::SolutionSet;
use wdsparql_hom::{all_homs_into_graph, TGraph};
use wdsparql_rdf::{Mapping, TripleIndex, TriplePattern};
use wdsparql_store::{bgp_is_cyclic, eval_bgp_wco, JoinStrategy};
use wdsparql_tree::{NodeId, Wdpf, Wdpt};

/// Enumerates `⟦T⟧_G` (pairwise node joins — the hom solver's
/// fail-first search).
pub fn enumerate_tree(t: &Wdpt, g: &dyn TripleIndex) -> SolutionSet {
    enumerate_tree_with(t, g, JoinStrategy::Pairwise)
}

/// Enumerates `⟦F⟧_G = ⋃_i ⟦T_i⟧_G` (pairwise node joins).
pub fn enumerate_forest(f: &Wdpf, g: &dyn TripleIndex) -> SolutionSet {
    enumerate_forest_with(f, g, JoinStrategy::Pairwise)
}

/// As [`enumerate_tree`], with a [`JoinStrategy`] for the per-node query
/// cores (see [`enumerate_forest_with`]).
pub fn enumerate_tree_with(t: &Wdpt, g: &dyn TripleIndex, strategy: JoinStrategy) -> SolutionSet {
    solutions_below(t, g, t.root(), &Mapping::new(), strategy)
        .into_iter()
        .collect()
}

/// As [`enumerate_forest`], with a [`JoinStrategy`] knob for the
/// per-node query cores: each node's pattern set is a BGP, and under
/// `Wco`/`Auto` the ones whose *bound* core is cyclic evaluate through
/// the store's worst-case-optimal leapfrog join instead of the hom
/// solver's backtracking search. The branch bindings shrink the core
/// first — a triangle with one variable already bound is no longer
/// cyclic, so `Auto` leaves it on the fail-first path.
pub fn enumerate_forest_with(f: &Wdpf, g: &dyn TripleIndex, strategy: JoinStrategy) -> SolutionSet {
    let mut out = SolutionSet::new();
    for t in &f.trees {
        out.extend(enumerate_tree_with(t, g, strategy));
    }
    out
}

/// The homomorphisms of one node's pattern set extending `base`, routed
/// by `strategy`: the hom solver (pairwise), or the WCOJ on the bound
/// core. Both return the full mapping on `vars(pat)` — the WCOJ path
/// joins the unbound variables and re-attaches the fixed ones.
///
/// `Auto` here routes on cyclicity of the bound shape *alone* — a pure
/// structural check (no index probes), because this runs once per
/// branch extension: the service planner's pairwise blow-up estimate
/// would re-walk candidate counts for every base mapping to guard a
/// case the fail-first hom search already handles well.
fn node_homs(
    pat: &TGraph,
    g: &dyn TripleIndex,
    base: &Mapping,
    strategy: JoinStrategy,
) -> Vec<Mapping> {
    if strategy != JoinStrategy::Pairwise {
        let bound: Vec<TriplePattern> = pat.iter().map(|t| t.apply_partial(base)).collect();
        if strategy == JoinStrategy::Wco || bgp_is_cyclic(&bound) {
            let fixed = base.restrict(pat.vars());
            return eval_bgp_wco(g, &bound)
                .into_iter()
                .map(|mu| {
                    mu.union(&fixed)
                        .expect("bound patterns cannot rebind fixed variables")
                })
                .collect();
        }
    }
    all_homs_into_graph(pat, g, base)
}

/// All maximal solutions of the subtree rooted at `n`, each including the
/// bindings of `base` (the mapping accumulated along the branch) plus the
/// bindings of `n`'s own pattern and of every extendable descendant.
fn solutions_below(
    t: &Wdpt,
    g: &dyn TripleIndex,
    n: NodeId,
    base: &Mapping,
    strategy: JoinStrategy,
) -> Vec<Mapping> {
    let mut out = Vec::new();
    for nu in node_homs(t.pat(n), g, base, strategy) {
        let combined = base
            .union(&nu)
            .expect("solver extensions agree with their fixed bindings");
        // Children combine by product; a child with no extension is absent.
        let mut partials = vec![combined.clone()];
        for &c in t.children(n) {
            let exts = solutions_below(t, g, c, &combined, strategy);
            if exts.is_empty() {
                continue;
            }
            let mut next = Vec::with_capacity(partials.len() * exts.len());
            for p in &partials {
                for e in &exts {
                    let u = p
                        .union(e)
                        .expect("sibling extensions share only branch variables");
                    next.push(u);
                }
            }
            partials = next;
        }
        out.extend(partials);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wdsparql_algebra::{eval, parse_pattern};
    use wdsparql_rdf::RdfGraph;

    fn assert_matches_reference(text: &str, g: &RdfGraph) {
        let p = parse_pattern(text).unwrap();
        let f = Wdpf::from_pattern(&p).unwrap();
        assert_eq!(
            enumerate_forest(&f, g),
            eval(&p, g),
            "enumeration diverges from reference semantics for {text}"
        );
    }

    fn sample_graph() -> RdfGraph {
        RdfGraph::from_strs([
            ("a", "p", "b"),
            ("a", "p", "c"),
            ("z0", "q", "a"),
            ("b", "r", "c"),
            ("c", "r", "d"),
            ("e", "p", "f"),
            ("w0", "q", "z0"),
            ("d", "q", "a"),
        ])
    }

    #[test]
    fn matches_reference_on_simple_patterns() {
        let g = sample_graph();
        assert_matches_reference("(?x, p, ?y)", &g);
        assert_matches_reference("((?x, p, ?y) AND (?y, r, ?u))", &g);
        assert_matches_reference("((?x, p, ?y) OPT (?y, r, ?u))", &g);
    }

    #[test]
    fn matches_reference_on_nested_opts() {
        let g = sample_graph();
        assert_matches_reference(
            "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
            &g,
        );
        assert_matches_reference("((?x, p, ?y) OPT ((?z, q, ?x) AND (?w, q, ?z)))", &g);
        assert_matches_reference("((?x, p, ?y) OPT ((?y, r, ?u) OPT (?u, r, ?v)))", &g);
    }

    #[test]
    fn matches_reference_on_unions() {
        let g = sample_graph();
        assert_matches_reference(
            "((?x, p, ?y) OPT (?y, r, ?u)) UNION ((?x, q, ?y) OPT (?y, p, ?u))",
            &g,
        );
    }

    #[test]
    fn sibling_children_multiply() {
        // Two independent OPT branches, both extendable twice.
        let g = RdfGraph::from_strs([
            ("a", "p", "b"),
            ("b", "q", "c1"),
            ("b", "q", "c2"),
            ("a", "r", "d1"),
            ("a", "r", "d2"),
        ]);
        assert_matches_reference("(((?x, p, ?y) OPT (?y, q, ?u)) OPT (?x, r, ?v))", &g);
        let f = Wdpf::from_pattern(
            &parse_pattern("(((?x, p, ?y) OPT (?y, q, ?u)) OPT (?x, r, ?v))").unwrap(),
        )
        .unwrap();
        assert_eq!(enumerate_forest(&f, &g).len(), 4);
    }

    #[test]
    fn empty_graph_has_no_solutions() {
        let f = Wdpf::from_pattern(&parse_pattern("(?x, p, ?y)").unwrap()).unwrap();
        assert!(enumerate_forest(&f, &RdfGraph::new()).is_empty());
    }

    /// Every join strategy enumerates the same solution sets — on
    /// cyclic node cores (where `Auto` and `Wco` route through the
    /// leapfrog join) and on OPT trees whose branch bindings shrink the
    /// core.
    #[test]
    fn join_strategies_agree_on_cyclic_cores() {
        let g = RdfGraph::from_strs([
            ("1", "r", "2"),
            ("2", "r", "3"),
            ("1", "r", "3"),
            ("3", "r", "1"),
            ("2", "r", "4"),
            ("3", "q", "x"),
        ]);
        for text in [
            // A triangle core in the root.
            "((?a, r, ?b) AND (?b, r, ?c)) AND (?a, r, ?c)",
            // Triangle root with an OPT arm.
            "(((?a, r, ?b) AND (?b, r, ?c)) AND (?a, r, ?c)) OPT (?c, q, ?w)",
            // Acyclic chain under OPT (Auto keeps the hom solver).
            "(?a, r, ?b) OPT ((?b, r, ?c) AND (?c, q, ?w))",
        ] {
            let p = parse_pattern(text).unwrap();
            let f = Wdpf::from_pattern(&p).unwrap();
            let want = eval(&p, &g);
            assert!(!want.is_empty(), "{text} should have solutions");
            for strategy in [
                wdsparql_store::JoinStrategy::Pairwise,
                wdsparql_store::JoinStrategy::Wco,
                wdsparql_store::JoinStrategy::Auto,
            ] {
                assert_eq!(
                    enumerate_forest_with(&f, &g, strategy),
                    want,
                    "{strategy} diverges on {text}"
                );
            }
        }
    }
}
