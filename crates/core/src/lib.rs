//! # wdsparql-core
//!
//! The evaluation engine for well-designed SPARQL — the executable heart of
//! Romero's PODS'18 tractability-frontier paper:
//!
//! * [`lemma1`] — the `µ ∈ ⟦T⟧_G` characterisation for NR-normal-form
//!   pattern trees;
//! * [`naive`] — the classical coNP evaluation algorithm (exact
//!   homomorphism tests);
//! * [`pebble_eval`] — the **Theorem 1** polynomial-time algorithm for
//!   classes of bounded domination width (homomorphism tests replaced by
//!   the existential (k+1)-pebble game);
//! * [`enumerate`] — full solution enumeration `⟦F⟧_G`;
//! * [`counting`] — solution counting and instrumented enumeration with
//!   delay measurement (the §5 variants);
//! * [`explain`] — membership certificates (Lemma 1 witnesses and
//!   counterexamples);
//! * [`engine`] — the public [`Query`]/[`Engine`] API with strategy
//!   selection and width analysis.

#![forbid(unsafe_code)]

pub mod counting;
pub mod engine;
pub mod enumerate;
pub mod explain;
pub mod lemma1;
pub mod naive;
pub mod pebble_eval;

pub use counting::{count_by_domain, count_forest, enumerate_with_stats, EnumStats};
pub use engine::{Engine, Query, QueryError, Strategy, WidthReport};
pub use enumerate::{
    enumerate_forest, enumerate_forest_budgeted, enumerate_forest_with, enumerate_tree,
    enumerate_tree_budgeted, enumerate_tree_with,
};
pub use explain::{explain_forest, explain_tree, Explanation, TreeRejection};
pub use lemma1::{child_extends, mu_subtree};
pub use naive::{check_forest, check_tree};
pub use pebble_eval::{check_forest_pebble, check_tree_pebble};
pub use wdsparql_algebra::GraphPattern;
pub use wdsparql_store::JoinStrategy;
