//! Membership certificates: *why* is `µ ∈ ⟦F⟧_G` (or not)?
//!
//! A positive certificate is the Lemma 1 witness: the tree index, the
//! subtree `T^µ` whose pattern `µ` maps into `G`, and — per child of the
//! subtree — evidence that no compatible extension exists. A negative
//! certificate records, per tree, why it fails: either no subtree matches
//! `dom(µ)`, or `µ` is not a homomorphism, or some child extends (with the
//! extension mapping as the counterexample).

use crate::lemma1::mu_subtree;
use std::fmt;
use wdsparql_hom::{find_hom_into_graph, GenTGraph};
use wdsparql_rdf::{Mapping, TripleIndex};
use wdsparql_tree::{subtree_children, subtree_with_vars, NodeId, Subtree, Wdpf, Wdpt};

/// Why one tree of the forest rejects `µ`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeRejection {
    /// No subtree of the tree has variable set `dom(µ)`.
    NoSubtreeForDomain,
    /// The subtree exists but `µ` does not map its pattern into `G`.
    NotAHomomorphism { subtree: Subtree },
    /// Some child extends compatibly — `µ` is not maximal in this tree.
    ChildExtends {
        subtree: Subtree,
        child: NodeId,
        extension: Mapping,
    },
}

impl fmt::Display for TreeRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeRejection::NoSubtreeForDomain => {
                write!(f, "no subtree has exactly dom(µ) as its variables")
            }
            TreeRejection::NotAHomomorphism { .. } => {
                write!(f, "µ does not map the subtree pattern into G")
            }
            TreeRejection::ChildExtends {
                child, extension, ..
            } => write!(
                f,
                "child node {} extends compatibly via {extension} (µ is not maximal)",
                child.0
            ),
        }
    }
}

/// The outcome of [`explain_forest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Explanation {
    /// `µ ∈ ⟦F⟧_G`, witnessed in tree `tree` by subtree `subtree` — every
    /// child of the subtree was checked to have no compatible extension.
    Member {
        tree: usize,
        subtree: Subtree,
        children_checked: Vec<NodeId>,
    },
    /// `µ ∉ ⟦F⟧_G`; one rejection reason per tree, in order.
    NonMember { rejections: Vec<TreeRejection> },
}

impl Explanation {
    pub fn is_member(&self) -> bool {
        matches!(self, Explanation::Member { .. })
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Explanation::Member {
                tree,
                subtree,
                children_checked,
            } => write!(
                f,
                "member: witnessed by tree {} on subtree of {} node(s); {} child(ren) verified unextendable",
                tree + 1,
                subtree.len(),
                children_checked.len()
            ),
            Explanation::NonMember { rejections } => {
                writeln!(f, "non-member:")?;
                for (i, r) in rejections.iter().enumerate() {
                    writeln!(f, "  tree {}: {r}", i + 1)?;
                }
                Ok(())
            }
        }
    }
}

/// Explains membership for one tree: `Ok` with the checked children on
/// success, `Err` with the rejection reason otherwise.
pub fn explain_tree(
    t: &Wdpt,
    g: &dyn TripleIndex,
    mu: &Mapping,
) -> Result<(Subtree, Vec<NodeId>), TreeRejection> {
    let dom = mu.domain().collect();
    let Some(st) = subtree_with_vars(t, &dom) else {
        return Err(TreeRejection::NoSubtreeForDomain);
    };
    if mu_subtree(t, g, mu).is_none() {
        return Err(TreeRejection::NotAHomomorphism { subtree: st });
    }
    let children = subtree_children(t, &st);
    for &n in &children {
        let pat = t.pat(n);
        let x: Vec<_> = pat.vars().into_iter().filter(|v| mu.contains(*v)).collect();
        let src = GenTGraph::new(pat.clone(), x);
        if let Some(nu) = find_hom_into_graph(&src, g, mu) {
            return Err(TreeRejection::ChildExtends {
                subtree: st,
                child: n,
                extension: nu,
            });
        }
    }
    Ok((st, children))
}

/// Produces a full certificate for `µ` against the forest.
pub fn explain_forest(f: &Wdpf, g: &dyn TripleIndex, mu: &Mapping) -> Explanation {
    let mut rejections = Vec::with_capacity(f.len());
    for (i, t) in f.trees.iter().enumerate() {
        match explain_tree(t, g, mu) {
            Ok((subtree, children_checked)) => {
                return Explanation::Member {
                    tree: i,
                    subtree,
                    children_checked,
                }
            }
            Err(r) => rejections.push(r),
        }
    }
    Explanation::NonMember { rejections }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::check_forest;
    use wdsparql_algebra::parse_pattern;
    use wdsparql_rdf::RdfGraph;

    fn forest(text: &str) -> Wdpf {
        Wdpf::from_pattern(&parse_pattern(text).unwrap()).unwrap()
    }

    fn g() -> RdfGraph {
        RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c"), ("d", "p", "e")])
    }

    #[test]
    fn member_certificate() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let mu = Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c")]);
        let e = explain_forest(&f, &g(), &mu);
        assert!(e.is_member());
        match e {
            Explanation::Member { tree, subtree, .. } => {
                assert_eq!(tree, 0);
                assert_eq!(subtree.len(), 2);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn rejection_no_subtree() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let mu = Mapping::from_strs([("x", "a")]); // {x} matches no subtree
        match explain_forest(&f, &g(), &mu) {
            Explanation::NonMember { rejections } => {
                assert_eq!(rejections, vec![TreeRejection::NoSubtreeForDomain]);
            }
            _ => panic!("must reject"),
        }
    }

    #[test]
    fn rejection_not_a_hom() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let mu = Mapping::from_strs([("x", "b"), ("y", "a")]);
        match explain_forest(&f, &g(), &mu) {
            Explanation::NonMember { rejections } => {
                assert!(matches!(
                    rejections[0],
                    TreeRejection::NotAHomomorphism { .. }
                ));
            }
            _ => panic!("must reject"),
        }
    }

    #[test]
    fn rejection_child_extends_with_counterexample() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let mu = Mapping::from_strs([("x", "a"), ("y", "b")]); // not maximal
        match explain_forest(&f, &g(), &mu) {
            Explanation::NonMember { rejections } => match &rejections[0] {
                TreeRejection::ChildExtends { extension, .. } => {
                    // The counterexample extension must actually be one.
                    assert_eq!(
                        extension.get(wdsparql_rdf::Variable::new("z")),
                        Some(wdsparql_rdf::Iri::new("c"))
                    );
                }
                other => panic!("wrong rejection {other:?}"),
            },
            _ => panic!("must reject"),
        }
    }

    #[test]
    fn explanation_agrees_with_naive_checker() {
        let f = forest("((?x, p, ?y) OPT (?y, q, ?z)) UNION ((?x, p, ?y) OPT (?x, q, ?w))");
        let graph = g();
        for mu in [
            Mapping::from_strs([("x", "a"), ("y", "b"), ("z", "c")]),
            Mapping::from_strs([("x", "a"), ("y", "b")]),
            Mapping::from_strs([("x", "d"), ("y", "e")]),
            Mapping::new(),
        ] {
            assert_eq!(
                explain_forest(&f, &graph, &mu).is_member(),
                check_forest(&f, &graph, &mu),
                "µ = {mu}"
            );
        }
    }

    #[test]
    fn display_renders_both_cases() {
        let f = forest("(?x, p, ?y) OPT (?y, q, ?z)");
        let graph = g();
        let yes = explain_forest(&f, &graph, &Mapping::from_strs([("x", "d"), ("y", "e")]));
        assert!(yes.to_string().contains("member"));
        let no = explain_forest(&f, &graph, &Mapping::from_strs([("x", "a"), ("y", "b")]));
        let text = no.to_string();
        assert!(text.contains("not maximal"), "{text}");
    }
}
