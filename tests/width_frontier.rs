//! Integration tests for the width machinery across crates: the frontier
//! separations, Proposition 5 on random trees, and recognition-problem
//! consistency.

use proptest::prelude::*;
use wdsparql::tree::Wdpf;
use wdsparql::width::{branch_treewidth, bw_at_most, domination_width, dw_at_most, local_width};
use wdsparql::workloads::{
    chain_tree, clique_child_tree, fk_forest, grid_child_tree, path_child_tree, random_wdpt,
    tprime_tree, RandomTreeParams,
};

#[test]
fn frontier_separations() {
    // F_k: dw = 1 but local width = k−1 (dominated, not locally tractable).
    for k in 3..=4 {
        let f = fk_forest(k);
        assert_eq!(domination_width(&f), 1);
        assert_eq!(wdsparql::width::local_width_forest(&f), k - 1);
    }
    // T'_k: bw = 1 but local width = k−1.
    for k in 3..=4 {
        let t = tprime_tree(k);
        assert_eq!(branch_treewidth(&t), 1);
        assert_eq!(local_width(&t), k - 1);
    }
    // Q_k: everything grows.
    for k in 3..=4 {
        let t = clique_child_tree(k);
        assert_eq!(branch_treewidth(&t), k - 1);
        assert_eq!(local_width(&t), k - 1);
    }
    // Chains and path children stay at 1.
    assert_eq!(branch_treewidth(&chain_tree(6)), 1);
    assert_eq!(branch_treewidth(&path_child_tree(5)), 1);
    // Rigid grid children realise every intermediate width: bw = min(r,c),
    // and Proposition 5 carries it over to dw.
    for (r, c) in [(2usize, 2usize), (2, 4), (3, 3)] {
        let t = grid_child_tree(r, c);
        assert_eq!(branch_treewidth(&t), r.min(c), "grid {r}x{c}");
        assert_eq!(domination_width(&Wdpf::new(vec![t])), r.min(c));
    }
    // The projection family R_k sits at dw = 1 for every k — the §5
    // contrast with its NP-hard projected membership (see E16).
    for k in 2..=4 {
        let rk = wdsparql::project::clique_projection_query(k);
        assert_eq!(domination_width(rk.forest()), 1, "dw(R_{k})");
    }
}

#[test]
fn recognition_is_consistent_with_exact_width() {
    for k in 2..=4 {
        let t = clique_child_tree(k);
        let bw = branch_treewidth(&t);
        assert!(bw_at_most(&t, bw));
        if bw > 1 {
            assert!(!bw_at_most(&t, bw - 1));
        }
        let f = Wdpf::new(vec![t]);
        let dw = domination_width(&f);
        assert!(dw_at_most(&f, dw));
        if dw > 1 {
            assert!(!dw_at_most(&f, dw - 1));
        }
    }
}

#[test]
fn dw_of_multi_tree_forest_is_at_most_per_tree_analysis() {
    // A forest mixing a bounded and an unbounded tree: dw is driven by the
    // subtree structure, not the per-tree maximum — sanity-check bounds.
    let f = Wdpf::new(vec![path_child_tree(3), clique_child_tree(3)]);
    let dw = domination_width(&f);
    assert!(dw >= 1);
    // The clique child's GtG element is not dominated by the path tree's
    // (different variable sets), so dw = 2 here.
    assert_eq!(dw, 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Proposition 5: dw = bw on random UNION-free trees.
    #[test]
    fn proposition5_on_random_trees(seed in 0u64..500) {
        let t = random_wdpt(RandomTreeParams::default(), seed);
        prop_assume!(t.len() <= 4); // keep dw computation cheap
        let bw = branch_treewidth(&t);
        let dw = domination_width(&Wdpf::new(vec![t]));
        prop_assert_eq!(dw, bw, "Proposition 5 violated at seed {}", seed);
    }

    /// Branch treewidth never exceeds local width + branch effects; more
    /// precisely bw ≤ max over nodes of ctw of the *whole* branch, and
    /// both are ≥ 1. We check the cheap invariant bw ≥ 1 and that
    /// recognition agrees with the computed value.
    #[test]
    fn bw_recognition_agrees(seed in 0u64..500) {
        let t = random_wdpt(RandomTreeParams::default(), seed);
        let bw = branch_treewidth(&t);
        prop_assert!(bw >= 1);
        prop_assert!(bw_at_most(&t, bw));
        if bw > 1 {
            prop_assert!(!bw_at_most(&t, bw - 1));
        }
    }
}
