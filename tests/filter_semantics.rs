//! Cross-crate FILTER integration: the surface syntax, the `FilterExpr`
//! semantics, the engine entry points and the §5 embedding connection
//! must all tell the same story.

use proptest::prelude::*;
use wdsparql::algebra::{eval, eval_filter, filter_solutions, parse_sparql_filtered, FilterExpr};
use wdsparql::hardness::{emb_brute_force, emb_query, emb_target};
use wdsparql::hom::UGraph;
use wdsparql::rdf::{Iri, Mapping, RdfGraph, Variable};
use wdsparql::workloads::random_graph;
use wdsparql::{Engine, Query};

/// Parsed filters evaluate exactly like hand-built `FilterExpr`s through
/// both the algebra-level and the engine-level entry points.
#[test]
fn parsed_filters_match_hand_built_expressions() {
    let text = "{ ?x knows ?y OPTIONAL { ?y email ?e } FILTER(?x != ?y && BOUND(?e)) }";
    let (pattern, _, parsed) = parse_sparql_filtered(text).unwrap();
    let hand_built = FilterExpr::and(
        FilterExpr::NeqVar(Variable::new("x"), Variable::new("y")),
        FilterExpr::Bound(Variable::new("e")),
    );
    assert_eq!(parsed, hand_built);
    let g = RdfGraph::from_strs([
        ("alice", "knows", "bob"),
        ("bob", "knows", "bob"),
        ("bob", "email", "b@x.org"),
    ]);
    let via_algebra = eval_filter(&pattern, &parsed, &g);
    let (q, f) = Query::parse_with_filter(text).unwrap();
    let via_engine = Engine::new(g).evaluate_filtered(&q, &f);
    assert_eq!(via_algebra, via_engine);
    // bob-knows-bob fails ?x != ?y even though bob has an email.
    assert_eq!(via_engine.len(), 1);
}

/// The all-distinct filter turns solutions into *embeddings*: cross-check
/// the surface syntax against the hardness crate's EMB encoding on a
/// homomorphism-vs-embedding separating instance.
#[test]
fn surface_filters_recover_the_embedding_problem() {
    // C4 → C2(≅ an edge): a graph homomorphism exists (wrap around) but
    // no embedding. emb_query builds the pairwise-≠ filter; we rebuild
    // the same filter through the parser and compare.
    let c4 = UGraph::cycle(4);
    let edge = UGraph::complete(2);
    let (pattern, emb_filter) = emb_query(&c4);
    let g = emb_target(&edge);
    assert!(!eval(&pattern, &g).is_empty(), "hom exists");
    assert!(
        eval_filter(&pattern, &emb_filter, &g).is_empty(),
        "no embedding"
    );
    assert!(!emb_brute_force(&c4, &edge));
    // And on a big-enough target both exist.
    let k4 = UGraph::complete(4);
    let g2 = emb_target(&k4);
    assert!(!eval_filter(&pattern, &emb_filter, &g2).is_empty());
    assert!(emb_brute_force(&c4, &k4));
}

/// Error-as-false corner cases through the engine: `!=` on an unbound
/// OPT variable never holds, `!(=)` does, and BOUND discriminates.
#[test]
fn error_as_false_interacts_with_opt() {
    let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c"), ("d", "p", "e")]);
    // Solutions: {x:a,y:b,z:c} (extended) and {x:d,y:e} (bare).
    let cases = [
        // (filter text, expected solution count)
        ("FILTER(?z != c)", 0),    // unbound z fails; bound z equals c
        ("FILTER(!(?z = c))", 1),  // the bare solution passes
        ("FILTER(BOUND(?z))", 1),  // only the extended one
        ("FILTER(!BOUND(?z))", 1), // only the bare one
        ("FILTER(?z = c || ?y = e)", 2),
        ("FILTER(?z = c && ?y = e)", 0),
    ];
    for (ftext, want) in cases {
        let text = format!("{{ ?x p ?y OPTIONAL {{ ?y q ?z }} {ftext} }}");
        let (q, f) = Query::parse_with_filter(&text).unwrap();
        let sols = Engine::new(g.clone()).evaluate_filtered(&q, &f);
        assert_eq!(sols.len(), want, "{ftext}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Filtering is a *restriction*: the filtered set is a subset of the
    /// unfiltered one, filtering is idempotent, and conjunction order
    /// never matters.
    #[test]
    fn filtering_laws(gseed in 0u64..3000) {
        let g = random_graph(4, 10, &["p", "q"], gseed);
        let (q, f) = Query::parse_with_filter(
            "{ ?x p ?y OPTIONAL { ?y q ?z } FILTER(?x != ?y) FILTER(!(?z = n0)) }",
        ).unwrap();
        let engine = Engine::new(g);
        let unfiltered = engine.evaluate(&q);
        let filtered = engine.evaluate_filtered(&q, &f);
        prop_assert!(filtered.is_subset(&unfiltered));
        prop_assert_eq!(
            filter_solutions(filtered.clone(), &f),
            filtered.clone(),
            "idempotence"
        );
        // Conjunction commutes.
        let (_, f_rev) = Query::parse_with_filter(
            "{ ?x p ?y OPTIONAL { ?y q ?z } FILTER(!(?z = n0)) FILTER(?x != ?y) }",
        ).unwrap();
        prop_assert_eq!(engine.evaluate_filtered(&q, &f_rev), filtered);
    }

    /// De Morgan over the solution sets: ¬(A ∨ B) filters exactly like
    /// ¬A ∧ ¬B (the boolean layer is classical even though atoms use
    /// error-as-false).
    #[test]
    fn de_morgan_on_solutions(gseed in 0u64..3000) {
        let g = random_graph(4, 10, &["p"], gseed);
        let base = Query::parse("(?x, p, ?y)").unwrap();
        let a = FilterExpr::EqConst(Variable::new("x"), Iri::new("n0"));
        let b = FilterExpr::EqVar(Variable::new("x"), Variable::new("y"));
        let lhs = FilterExpr::not(FilterExpr::or(a.clone(), b.clone()));
        let rhs = FilterExpr::and(FilterExpr::not(a), FilterExpr::not(b));
        let engine = Engine::new(g);
        prop_assert_eq!(
            engine.evaluate_filtered(&base, &lhs),
            engine.evaluate_filtered(&base, &rhs)
        );
    }

    /// Parser/printer agreement on membership: a filtered solution is a
    /// solution of the unfiltered query that satisfies the filter.
    #[test]
    fn filtered_membership_decomposes(gseed in 0u64..3000, mseed in 0u64..8) {
        let g = random_graph(4, 12, &["p", "q"], gseed);
        let (q, f) = Query::parse_with_filter(
            "{ ?x p ?y OPTIONAL { ?y q ?z } FILTER(?x != ?y) }",
        ).unwrap();
        let engine = Engine::new(g);
        let all = engine.evaluate(&q);
        let filtered = engine.evaluate_filtered(&q, &f);
        for mu in &all {
            prop_assert_eq!(filtered.contains(mu), f.holds(mu));
        }
        // A mapping outside the unfiltered set is never in the filtered set.
        let probe = Mapping::from_strs([("x", &format!("zz{mseed}")[..]), ("y", "n0")]);
        prop_assert!(!filtered.contains(&probe));
    }
}
