//! Cross-crate integration: the SELECT/projection extension and the
//! containment analyser working against the evaluation engine and the
//! width machinery, on the paper's families and on realistic data.

use wdsparql::contain::{
    decide_containment, decide_equivalence, exhaustive_counterexample, SearchBudget, Verdict,
};
use wdsparql::core::enumerate_forest;
use wdsparql::project::{
    analyze_projected, anchored_graph, check_projected, clique_projection_query,
    enumerate_projected,
};
use wdsparql::rdf::{Mapping, Variable};
use wdsparql::width::{domination_width, recognize_dw};
use wdsparql::workloads::{turan_graph, university};
use wdsparql::{Engine, ProjectedQuery, Query};

/// The full §5 story on one family: R_k is recognised as width-1
/// (tractable without projection, Theorem 3), evaluates in PTIME
/// unprojected, and its projected membership is exactly k-CLIQUE.
#[test]
fn projection_breaks_the_dichotomy_end_to_end() {
    let k = 3;
    let rk = clique_projection_query(k);
    // Width side: certificates at k = 1.
    assert_eq!(domination_width(rk.forest()), 1);
    assert!(recognize_dw(rk.forest(), 1).holds());
    // Semantics side: projected membership = anchored k-clique detection.
    let (gpos, hub) = anchored_graph(&turan_graph(3 * k, k, "r"), "hub");
    let mut mu = Mapping::new();
    mu.bind(Variable::new("u"), hub);
    assert!(check_projected(&rk, &gpos, &mu));
    let (gneg, hub) = anchored_graph(&turan_graph(4 * (k - 1), k - 1, "r"), "hub");
    let mut mu = Mapping::new();
    mu.bind(Variable::new("u"), hub);
    assert!(!check_projected(&rk, &gneg, &mu));
    // Enumeration agrees on both.
    assert!(!enumerate_projected(&rk, &gpos).is_empty());
    assert!(enumerate_projected(&rk, &gneg).is_empty());
}

/// SELECT over the university generator: projection, engine evaluation
/// and the projected width report stay mutually consistent.
#[test]
fn select_on_university_data_is_consistent_with_the_engine() {
    let g = university(3, 9);
    let text = "SELECT ?s ?a WHERE { ?s type Student OPTIONAL { ?s advisor ?a } }";
    let pq = ProjectedQuery::parse(text).unwrap();
    // The same pattern through the unprojected engine.
    let q = Query::parse("{ ?s type Student OPTIONAL { ?s advisor ?a } }").unwrap();
    let engine = Engine::new(g.clone());
    let full = engine.evaluate(&q);
    let projected = enumerate_projected(&pq, &g);
    // Identity here: the pattern's variables are exactly {s, a}.
    assert_eq!(full, projected);
    for mu in &projected {
        assert!(check_projected(&pq, &g, mu));
    }
    // Projecting to ?s collapses nothing (each student appears once per
    // advisor binding, and advisors are unique per student) — but the
    // report must still show the identity-free measures.
    let ps =
        ProjectedQuery::parse("SELECT ?s WHERE { ?s type Student OPTIONAL { ?s advisor ?a } }")
            .unwrap();
    let r = analyze_projected(&ps);
    assert_eq!(r.output_vars, 1);
    assert!(r.global_treewidth >= 1);
    let collapsed = enumerate_projected(&ps, &g);
    assert!(collapsed.len() <= projected.len());
    assert!(!collapsed.is_empty());
}

/// Containment verdicts vs the evaluation engine: every Contained verdict
/// holds on concrete graphs, every NotContained witness re-verifies, and
/// equivalence of syntactic variants is proved.
#[test]
fn containment_verdicts_agree_with_evaluation() {
    let budget = SearchBudget::default();
    let pairs = [
        // (P1, P2, expect-contained-forward)
        (
            "(?x, p, ?y) AND (?y, q, ?z)",
            "(?y, q, ?z) AND (?x, p, ?y)",
            true,
        ),
        ("(?x, p, ?y)", "(?x, p, ?y) OPT (?y, q, ?z)", false),
        (
            "(?x, p, ?y) AND (?y, q, ?z)",
            "(?x, p, ?y) OPT (?y, q, ?z)",
            true,
        ),
    ];
    for (a, b, expect) in pairs {
        let qa = Query::parse(a).unwrap();
        let qb = Query::parse(b).unwrap();
        match decide_containment(qa.forest(), qb.forest(), &budget) {
            Verdict::Contained => {
                assert!(expect, "{a} ⊆ {b} proved but expected refutation");
                // Spot-check on graphs derived from both patterns.
                for seed in 0..4 {
                    let g = wdsparql::workloads::random_graph(4, 8, &["p", "q"], seed);
                    let sa = enumerate_forest(qa.forest(), &g);
                    let sb = enumerate_forest(qb.forest(), &g);
                    assert!(sa.is_subset(&sb), "{a} ⊆ {b} fails on seed {seed}");
                }
            }
            Verdict::NotContained(ce) => {
                assert!(!expect, "{a} ⊆ {b} refuted but expected containment");
                assert!(ce.verify(qa.forest(), qb.forest()));
            }
            Verdict::Unknown => panic!("{a} vs {b}: expected a definite verdict"),
        }
    }
}

/// The exhaustive bounded search agrees with the targeted search on both
/// positive and negative instances.
#[test]
fn exhaustive_and_targeted_searches_agree() {
    let q1 = Query::parse("(?x, p, ?y) OPT (?y, q, ?z)").unwrap();
    let q2 = Query::parse("(?x, p, ?y) OPT ((?y, q, ?z) AND (?z, q, ?y))").unwrap();
    // These differ: a (b,q,c) edge without the back-edge extends only q1.
    let ce = exhaustive_counterexample(q1.forest(), q2.forest(), 2, 2);
    assert!(ce.is_some());
    assert!(ce.unwrap().verify(q1.forest(), q2.forest()));
    // Equivalence both ways for a UNION shuffle, via the full decider.
    let u1 = Query::parse("(?x, p, ?y) UNION (?x, q, ?y)").unwrap();
    let u2 = Query::parse("(?x, q, ?y) UNION (?x, p, ?y)").unwrap();
    let (fwd, bwd) = decide_equivalence(u1.forest(), u2.forest(), &SearchBudget::default());
    assert!(fwd.is_contained() && bwd.is_contained());
}

/// Projection on UNION forests: per-branch projection with cross-branch
/// deduplication, checked against the membership search.
#[test]
fn union_projection_deduplicates_across_branches() {
    let g = wdsparql::rdf::RdfGraph::from_strs([("a", "p", "b"), ("a", "q", "c"), ("d", "q", "e")]);
    let q = ProjectedQuery::parse("SELECT ?x WHERE { { ?x p ?y } UNION { ?x q ?y } }").unwrap();
    let sols = enumerate_projected(&q, &g);
    // a matches both branches but appears once.
    assert_eq!(sols.len(), 2);
    let mut a = Mapping::new();
    a.bind(Variable::new("x"), wdsparql::rdf::Iri::new("a"));
    assert!(check_projected(&q, &g, &a));
}
