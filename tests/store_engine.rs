//! Integration: the store-backed [`Engine`] agrees with the reference
//! semantics (and with the memory-backed engine) on the paper's example
//! queries, over both hand-built and generated workload graphs.

use std::sync::Arc;
use wdsparql::algebra::eval as reference_eval;
use wdsparql::core::{Engine, Query, Strategy};
use wdsparql::rdf::{Mapping, RdfGraph, Triple};
use wdsparql::workloads::{social_network, triple_stream, university};
use wdsparql::TripleStore;

/// The paper's running example queries (Examples 1/2 shapes plus OPT
/// chains and a UNION), in the paper's surface syntax.
const PAPER_QUERIES: &[&str] = &[
    "(((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?y, r, ?o1) AND (?o1, r, ?o2)))",
    "((?x, p, ?y) OPT (?z, q, ?x)) OPT ((?x, w, ?w1) AND (?w1, w, ?x))",
    "(?x, p, ?y) OPT ((?y, r, ?o1) OPT (?o1, r, ?o2))",
    "((?x, p, ?y) OPT (?y, r, ?u)) UNION ((?z, q, ?x) OPT (?x, p, ?y))",
];

fn example_graph() -> RdfGraph {
    RdfGraph::from_strs([
        ("a", "p", "b"),
        ("z0", "q", "a"),
        ("b", "r", "c"),
        ("c", "r", "d"),
        ("e", "p", "f"),
        ("w1", "w", "w2"),
        ("w2", "w", "w1"),
    ])
}

#[test]
fn store_backed_engine_agrees_with_reference_on_paper_queries() {
    let g = example_graph();
    let store = Arc::new(TripleStore::from_rdf(&g));
    let engine = Engine::from_store(Arc::clone(&store));
    for text in PAPER_QUERIES {
        let q = Query::parse(text).unwrap();
        let via_store = engine.evaluate(&q);
        let reference = reference_eval(q.pattern(), &g);
        assert_eq!(via_store, reference, "divergence on {text}");
        for mu in &reference {
            assert!(engine.check(&q, mu, Strategy::Naive), "naive rejects {mu}");
            assert!(engine.check(&q, mu, Strategy::Auto), "auto rejects {mu}");
        }
        let non = Mapping::from_strs([("x", "zzz-not-here"), ("y", "b")]);
        assert!(!engine.check(&q, &non, Strategy::Naive));
    }
}

#[test]
fn store_and_memory_backends_agree_on_workload_graphs() {
    for (label, g) in [
        ("social", social_network(40, 7)),
        ("university", university(3, 11)),
    ] {
        let store = Arc::new(TripleStore::from_rdf(&g));
        let via_store = Engine::from_store(store);
        let memory = Engine::new(g);
        for text in [
            "((?p, type, Person) OPT (?p, email, ?e)) OPT (?p, city, ?c)",
            "(?s, type, Student) OPT ((?s, advisor, ?a) OPT (?a, office, ?o))",
        ] {
            let q = Query::parse(text).unwrap();
            assert_eq!(
                via_store.evaluate(&q),
                memory.evaluate(&q),
                "{label}: {text}"
            );
            assert_eq!(via_store.count(&q), memory.count(&q));
        }
    }
}

#[test]
fn bulk_loaded_stream_serves_queries_like_a_set_build() {
    let triples: Vec<Triple> = triple_stream(60, 2_000, 4, 3).collect();
    let store = Arc::new(TripleStore::new());
    // Load in uneven batches, exercising the sorted-merge insert path.
    for chunk in triples.chunks(333) {
        store.bulk_load(chunk.iter().copied());
    }
    let set_build: RdfGraph = triples.iter().copied().collect();
    assert_eq!(store.len(), set_build.len());
    let engine = Engine::from_store(Arc::clone(&store));
    let q = Query::parse("(?x, p0, ?y) OPT (?y, p1, ?z)").unwrap();
    assert_eq!(engine.evaluate(&q), Engine::new(set_build).evaluate(&q));
    // The epoch-keyed cache serves the repeated service query.
    let pats = [
        wdsparql::rdf::tp(
            wdsparql::rdf::var("x"),
            wdsparql::rdf::iri("p0"),
            wdsparql::rdf::var("y"),
        ),
        wdsparql::rdf::tp(
            wdsparql::rdf::var("y"),
            wdsparql::rdf::iri("p1"),
            wdsparql::rdf::var("z"),
        ),
    ];
    let first = store.query(&pats);
    let second = store.query(&pats);
    assert_eq!(first, second);
    assert!(store.cache_stats().hits >= 1);
}
