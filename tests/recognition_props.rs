//! Property tests for the recognition problem: on random well-designed
//! forests, the certificate-producing recognisers must agree exactly with
//! the width computations, certificates must verify, and the §3.2
//! collapse (dw = bw on UNION-free patterns) must carry over to the
//! recognisers.

use proptest::prelude::*;
use wdsparql::width::{
    branch_treewidth, domination_width, recognize_bw, recognize_dw, verify_dw_certificate,
    DwCertificate,
};
use wdsparql::workloads::{random_wdpf, random_wdpt, RandomTreeParams};

fn small_params() -> RandomTreeParams {
    RandomTreeParams {
        max_nodes: 4,
        max_fanout: 2,
        max_triples_per_node: 2,
        n_predicates: 2,
        reuse_bias: 0.6,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `recognize_dw(F, k)` holds exactly for `k ≥ dw(F)`, and every
    /// positive certificate verifies.
    #[test]
    fn dw_recognition_matches_the_exact_width(seed in 0u64..3000) {
        let f = random_wdpf(small_params(), seed);
        let dw = domination_width(&f);
        // At the exact width: holds with a verifiable certificate.
        match recognize_dw(&f, dw) {
            DwCertificate::Holds(entries) => {
                prop_assert!(verify_dw_certificate(&f, dw, &entries));
            }
            DwCertificate::Violated(v) => {
                prop_assert!(false, "dw(F) = {dw} but k = {dw} violated: {v:?}");
            }
        }
        // Just below (when possible): violated with an honest witness.
        if dw > 1 {
            match recognize_dw(&f, dw - 1) {
                DwCertificate::Violated(v) => {
                    prop_assert!(v.element_ctw > dw - 1);
                }
                DwCertificate::Holds(_) => {
                    prop_assert!(false, "dw(F) = {dw} but k = {} accepted", dw - 1);
                }
            }
        }
    }

    /// `recognize_bw` agrees with `branch_treewidth`, and on UNION-free
    /// patterns with `recognize_dw` too (Proposition 5 at the level of
    /// deciders).
    #[test]
    fn bw_recognition_matches_and_collapses_to_dw(seed in 0u64..3000) {
        let t = random_wdpt(small_params(), seed);
        let bw = branch_treewidth(&t);
        prop_assert!(recognize_bw(&t, bw).holds());
        if bw > 1 {
            prop_assert!(!recognize_bw(&t, bw - 1).holds());
        }
        let f = wdsparql::tree::Wdpf::new(vec![t]);
        prop_assert_eq!(
            recognize_dw(&f, bw).holds(),
            true,
            "Proposition 5: dw = bw on UNION-free patterns"
        );
        if bw > 1 {
            prop_assert!(!recognize_dw(&f, bw - 1).holds());
        }
    }

    /// A certificate for width k is also valid testimony for any k' ≥ k
    /// (k-domination is monotone), and the verifier accepts it at k'.
    #[test]
    fn certificates_are_monotone_in_k(seed in 0u64..3000) {
        let f = random_wdpf(small_params(), seed);
        let dw = domination_width(&f);
        if let DwCertificate::Holds(entries) = recognize_dw(&f, dw) {
            prop_assert!(verify_dw_certificate(&f, dw + 1, &entries));
            prop_assert!(verify_dw_certificate(&f, dw + 3, &entries));
            // ...but not below the width it certifies.
            if dw > 1 {
                prop_assert!(!verify_dw_certificate(&f, dw - 1, &entries));
            }
        }
    }
}
