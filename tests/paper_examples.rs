//! The paper's running examples, end to end — every claim the text makes
//! about Examples 1–5 and Figures 1–3, checked against the implementation.

use wdsparql::algebra::is_well_designed;
use wdsparql::core::{check_forest, check_forest_pebble, Engine, Query, Strategy};
use wdsparql::hom::{core_of, ctw, is_core, maps_to, tw_gen};
use wdsparql::rdf::{Mapping, RdfGraph};
use wdsparql::tree::{Wdpf, ROOT};
use wdsparql::width::{branch_treewidth, domination_width, gtg, local_width_forest, ForestSubtree};
use wdsparql::workloads::{
    example1_p1, example1_p2, example2_pattern, example3_c_prime, example3_s, example3_s_prime,
    fk_forest, tprime_tree,
};

#[test]
fn example1_well_designedness() {
    assert!(is_well_designed(&example1_p1()), "P1 is well-designed");
    assert!(!is_well_designed(&example1_p2()), "P2 is not well-designed");
}

#[test]
fn example2_wdpf_shape_matches_figure2() {
    // wdpf(P) = {T1, T2} for k = 2: T1 has root (x,p,y) with children
    // (z,q,x) and {(y,r,o1),(o1,r,o2)} = K2 case; T2 has root (x,p,y)
    // with child {(z,q,x),(w,q,z)}.
    let f = Wdpf::from_pattern(&example2_pattern()).unwrap();
    assert_eq!(f.len(), 2);
    let t1 = &f.trees[0];
    assert_eq!(t1.len(), 3);
    assert_eq!(t1.children(ROOT).len(), 2);
    let t2 = &f.trees[1];
    assert_eq!(t2.len(), 2);
    assert_eq!(t2.pat(t2.children(ROOT)[0]).len(), 2);
    // Compare with the F_k construction at k = 2 (T1, T2 of Figure 2).
    let fk = fk_forest(2);
    assert_eq!(t1.pat(ROOT), fk.trees[0].pat(ROOT));
    assert_eq!(
        t2.pat(t2.children(ROOT)[0]),
        fk.trees[1].pat(fk.trees[1].children(ROOT)[0])
    );
}

#[test]
fn example3_figure1_width_claims() {
    for k in 2..=5 {
        let s = example3_s(k);
        assert!(is_core(&s), "(S,X) is a core");
        assert_eq!(ctw(&s).width, (k - 1).max(1), "ctw(S,X) = k−1");
        let sp = example3_s_prime(k);
        assert_eq!(ctw(&sp).width, 1, "ctw(S',X) = 1");
        assert_eq!(tw_gen(&sp).width, (k - 1).max(1), "tw(S',X) = k−1");
        let c = core_of(&sp);
        assert_eq!(c.s, example3_c_prime(), "the core C' is as printed");
    }
}

#[test]
fn example4_gtg_structure() {
    let k = 3;
    let f = fk_forest(k);
    // Exactly five subtrees have non-empty GtG: T1[r1], T1[r1,n11],
    // T1[r1,n12], T2[r2], T3[r3].
    let mut nonempty = 0;
    for st in wdsparql::width::forest_subtrees(&f) {
        if !gtg(&f, &st).is_empty() {
            nonempty += 1;
        }
    }
    assert_eq!(nonempty, 5);
    // |GtG(T1[r1])| = 2 (∆1, ∆2 of the example).
    let root_subtree = ForestSubtree {
        tree: 0,
        nodes: [ROOT].into_iter().collect(),
    };
    assert_eq!(gtg(&f, &root_subtree).len(), 2);
}

#[test]
fn example5_domination_width_one() {
    for k in 2..=4 {
        assert_eq!(domination_width(&fk_forest(k)), 1, "dw(F_{k}) = 1");
    }
}

#[test]
fn fk_is_not_locally_tractable() {
    // Node n12 forces local width k−1 (the remark after Theorem 1).
    for k in 3..=5 {
        assert_eq!(local_width_forest(&fk_forest(k)), k - 1);
    }
}

#[test]
fn figure3_domination_of_s_delta2_by_s_delta1() {
    let k = 4;
    let f = fk_forest(k);
    let st = ForestSubtree {
        tree: 0,
        nodes: [ROOT].into_iter().collect(),
    };
    let elements = gtg(&f, &st);
    let lo = elements.iter().find(|e| ctw(&e.graph).width == 1).unwrap();
    let hi = elements
        .iter()
        .find(|e| ctw(&e.graph).width == k - 1)
        .unwrap();
    assert!(maps_to(&lo.graph, &hi.graph), "(S∆1) → (S∆2)");
}

#[test]
fn section32_tprime_claims() {
    for k in 2..=4 {
        let t = tprime_tree(k);
        assert_eq!(branch_treewidth(&t), 1, "bw(T'_k) = 1");
        assert_eq!(
            wdsparql::width::local_width(&t),
            k - 1,
            "not locally tractable"
        );
        // Proposition 5: dw = bw on UNION-free patterns.
        assert_eq!(domination_width(&Wdpf::new(vec![t])), 1);
    }
}

#[test]
fn example1_p1_evaluates_correctly_end_to_end() {
    let q = Query::from_pattern(example1_p1()).unwrap();
    let g = RdfGraph::from_strs([
        ("a", "p", "b"),
        ("z0", "q", "a"),
        ("b", "r", "c"),
        ("c", "r", "d"),
        ("e", "p", "f"),
    ]);
    let engine = Engine::new(g);
    let sols = engine.evaluate(&q);
    let full = Mapping::from_strs([
        ("x", "a"),
        ("y", "b"),
        ("z", "z0"),
        ("o1", "c"),
        ("o2", "d"),
    ]);
    let bare = Mapping::from_strs([("x", "e"), ("y", "f")]);
    assert!(sols.contains(&full));
    assert!(sols.contains(&bare));
    assert_eq!(sols.len(), 2);
    for strategy in [Strategy::Reference, Strategy::Naive, Strategy::Auto] {
        assert!(engine.check(&q, &full, strategy));
        assert!(engine.check(&q, &bare, strategy));
        assert!(!engine.check(&q, &Mapping::from_strs([("x", "a"), ("y", "b")]), strategy));
    }
}

#[test]
fn theorem1_algorithm_exact_on_fk_instances() {
    // The dichotomy instances from the workloads crate: the pebble
    // algorithm at k = 1 = dw(F_k) agrees with the naive evaluator.
    for k in 3..=4 {
        let inst = wdsparql::workloads::fk_instance(k, 4 * (k - 1));
        let naive = check_forest(&inst.forest, &inst.graph, &inst.mu);
        let pebble = check_forest_pebble(&inst.forest, &inst.graph, &inst.mu, 1);
        assert_eq!(naive, inst.expected, "naive ground truth (k={k})");
        assert_eq!(pebble, inst.expected, "pebble agrees (k={k})");

        let neg = wdsparql::workloads::fk_instance_negative(k, 4 * (k - 1));
        assert_eq!(check_forest(&neg.forest, &neg.graph, &neg.mu), neg.expected);
        assert_eq!(
            check_forest_pebble(&neg.forest, &neg.graph, &neg.mu, 1),
            neg.expected
        );
    }
}
