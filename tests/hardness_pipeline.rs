//! Integration tests for the §4.2 hardness pipeline at the forest level:
//! reduction correctness against brute-force clique detection, and the
//! freeze/Θ machinery.

use wdsparql::core::check_forest;
use wdsparql::hardness::{clique_family_parameter, has_k_clique, reduce_clique};
use wdsparql::hom::{theta, UGraph};
use wdsparql::rdf::Term;
use wdsparql::tree::Wdpf;
use wdsparql::workloads::clique_child_tree;

fn reduction_agrees(h: &UGraph, k: usize) {
    let m = clique_family_parameter(k).max(2);
    let forest = Wdpf::new(vec![clique_child_tree(m)]);
    let inst = reduce_clique(forest, h, k, m - 1).expect("reduction succeeds");
    let clique = has_k_clique(h, k);
    let member = check_forest(&inst.forest, &inst.graph, &inst.mu);
    assert_eq!(
        clique, !member,
        "correctness: clique={clique} but member={member}"
    );
}

#[test]
fn k2_reduction_over_graph_zoo() {
    for h in [
        UGraph::path(2),
        UGraph::path(5),
        UGraph::cycle(4),
        UGraph::complete(5),
        UGraph::grid(2, 3),
        {
            let mut g = UGraph::new(7);
            g.add_edge(5, 6);
            g
        },
    ] {
        reduction_agrees(&h, 2);
    }
}

#[test]
fn frozen_graph_round_trips_variables() {
    let k = 2;
    let m = clique_family_parameter(k).max(2);
    let forest = Wdpf::new(vec![clique_child_tree(m)]);
    let inst = reduce_clique(forest, &UGraph::path(3), k, m - 1).unwrap();
    // µ maps X-variables to frozen IRIs; Θ inverts the freezing.
    for (v, iri) in inst.mu.iter() {
        assert_eq!(theta(iri), Term::Var(v), "Θ(Ψ(?x)) = ?x");
    }
    // The frozen graph is exactly |B| triples.
    assert_eq!(inst.graph.len(), inst.lemma2.b.s.len());
}

#[test]
fn witness_ctw_matches_family_width() {
    let k = 2;
    let m = clique_family_parameter(k).max(2);
    let forest = Wdpf::new(vec![clique_child_tree(m)]);
    let inst = reduce_clique(forest, &UGraph::path(3), k, m - 1).unwrap();
    // Q_2's branch t-graph has ctw 1; the Lemma 3 witness reports it.
    assert_eq!(inst.witness_ctw, m - 1);
}

#[test]
fn reduction_instance_is_polynomial_in_h() {
    // fpt shape: |G| grows polynomially with |H| for fixed k.
    let k = 2;
    let m = clique_family_parameter(k).max(2);
    let mut sizes = Vec::new();
    for n in [3usize, 5, 7] {
        let forest = Wdpf::new(vec![clique_child_tree(m)]);
        let inst = reduce_clique(forest, &UGraph::complete(n), k, m - 1).unwrap();
        sizes.push(inst.graph.len());
    }
    assert!(sizes[0] < sizes[1] && sizes[1] < sizes[2]);
    // Quadratic-ish in edges for the K2-source: sanity bound, not a proof.
    assert!(sizes[2] < 100 * sizes[0]);
}
