//! Cross-crate differential tests: the reference bottom-up semantics, the
//! Lemma-1 naive evaluator, the solution enumerator and the Theorem 1
//! pebble evaluator must all agree wherever each is applicable.

use proptest::prelude::*;
use wdsparql::algebra::{eval, GraphPattern};
use wdsparql::core::{check_forest, check_forest_pebble, enumerate_forest};
use wdsparql::rdf::{iri, tp, var, Mapping, RdfGraph, Term, Triple};
use wdsparql::tree::Wdpf;

/// A small deterministic universe for random graphs and patterns.
const NODES: [&str; 4] = ["a", "b", "c", "d"];
const PREDS: [&str; 2] = ["p", "q"];

fn arb_graph() -> impl proptest::strategy::Strategy<Value = RdfGraph> {
    proptest::collection::vec((0..4usize, 0..2usize, 0..4usize), 0..10).prop_map(|triples| {
        RdfGraph::from_triples(
            triples
                .into_iter()
                .map(|(s, p, o)| Triple::from_strs(NODES[s], PREDS[p], NODES[o])),
        )
    })
}

/// Random *well-designed* UNION-free patterns, built top-down so the OPT
/// scope condition holds by construction: the right side of an OPT may use
/// left-side variables plus fresh privates, and privates never escape.
#[derive(Clone, Debug)]
enum Shape {
    Leaf,
    And(Box<Shape>, Box<Shape>),
    Opt(Box<Shape>, Box<Shape>),
}

fn arb_shape() -> impl proptest::strategy::Strategy<Value = Shape> {
    let leaf = Just(Shape::Leaf).boxed();
    leaf.prop_recursive(3, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| Shape::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Shape::Opt(Box::new(l), Box::new(r))),
        ]
    })
}

/// Instantiates a shape into a well-designed pattern. `scope` carries the
/// variables visible so far; fresh variables are globally numbered.
fn realize(
    shape: &Shape,
    scope: &mut Vec<Term>,
    counter: &mut usize,
    picks: &mut StdPicker,
) -> GraphPattern {
    match shape {
        Shape::Leaf => {
            let term =
                |scope: &mut Vec<Term>, counter: &mut usize, picks: &mut StdPicker| match picks
                    .next()
                    % 3
                {
                    0 if !scope.is_empty() => scope[picks.next() % scope.len()],
                    1 => iri(NODES[picks.next() % NODES.len()]),
                    _ => {
                        *counter += 1;
                        let v = var(&format!("pt{counter}"));
                        scope.push(v);
                        v
                    }
                };
            let s = term(scope, counter, picks);
            let o = term(scope, counter, picks);
            let p = iri(PREDS[picks.next() % PREDS.len()]);
            GraphPattern::Triple(tp(s, p, o))
        }
        Shape::And(l, r) => {
            let lp = realize(l, scope, counter, picks);
            let rp = realize(r, scope, counter, picks);
            GraphPattern::and(lp, rp)
        }
        Shape::Opt(l, r) => {
            let lp = realize(l, scope, counter, picks);
            // The optional side may reuse only the *safe* variables of its
            // own left side — those not private to a nested OPT (anything
            // else would occur outside that inner OPT and violate the
            // scope condition). Its fresh variables stay private (the
            // shared counter keeps them globally unique).
            let mut inner_scope: Vec<Term> = safe_vars(&lp).into_iter().map(Term::Var).collect();
            let rp = realize(r, &mut inner_scope, counter, picks);
            GraphPattern::opt(lp, rp)
        }
    }
}

/// Variables of a pattern that an enclosing optional part may reuse
/// without breaking well-designedness: everything except variables
/// private to some nested OPT's right side.
fn safe_vars(p: &GraphPattern) -> std::collections::BTreeSet<wdsparql::rdf::Variable> {
    match p {
        GraphPattern::Triple(t) => t.vars(),
        GraphPattern::And(l, r) => {
            let mut out = safe_vars(l);
            out.extend(safe_vars(r));
            out
        }
        GraphPattern::Opt(l, _) => safe_vars(l),
        GraphPattern::Union(l, r) => {
            let mut out = safe_vars(l);
            out.extend(safe_vars(r));
            out
        }
    }
}

/// Deterministic pick stream derived from a seed.
struct StdPicker {
    state: u64,
}

impl StdPicker {
    fn new(seed: u64) -> StdPicker {
        StdPicker {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1),
        }
    }
    fn next(&mut self) -> usize {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.state >> 33) as usize
    }
}

fn arb_wd_pattern() -> impl proptest::strategy::Strategy<Value = GraphPattern> {
    (arb_shape(), any::<u64>()).prop_map(|(shape, seed)| {
        let mut scope = Vec::new();
        let mut counter = 0;
        let mut picks = StdPicker::new(seed);
        realize(&shape, &mut scope, &mut counter, &mut picks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Generated patterns are well-designed by construction.
    #[test]
    fn generated_patterns_are_well_designed(p in arb_wd_pattern()) {
        prop_assert!(wdsparql::algebra::is_well_designed(&p),
            "not well-designed: {p}");
    }

    /// Enumeration over the wdPF agrees with the reference semantics.
    #[test]
    fn enumeration_matches_reference(p in arb_wd_pattern(), g in arb_graph()) {
        let f = Wdpf::from_pattern(&p).unwrap();
        let reference = eval(&p, &g);
        let enumerated = enumerate_forest(&f, &g);
        prop_assert_eq!(enumerated, reference, "pattern {}", p);
    }

    /// The naive Lemma-1 membership check agrees with the reference
    /// semantics, both on actual solutions and on perturbed mappings.
    #[test]
    fn naive_check_matches_reference(p in arb_wd_pattern(), g in arb_graph()) {
        let f = Wdpf::from_pattern(&p).unwrap();
        let reference = eval(&p, &g);
        for mu in reference.iter().take(8) {
            prop_assert!(check_forest(&f, &g, mu), "missing solution {} of {}", mu, p);
        }
        // Perturbations: restrictions of solutions are usually
        // non-solutions (unless another branch yields them) — compare
        // against the reference truth rather than assuming.
        for mu in reference.iter().take(4) {
            let dom: Vec<_> = mu.domain().collect();
            if dom.len() > 1 {
                let restricted = mu.restrict(dom[..dom.len()-1].iter().copied());
                prop_assert_eq!(
                    check_forest(&f, &g, &restricted),
                    reference.contains(&restricted),
                    "restriction of {} in {}", mu, p
                );
            }
        }
        // The empty mapping.
        let empty = Mapping::new();
        prop_assert_eq!(
            check_forest(&f, &g, &empty),
            reference.contains(&empty),
            "empty mapping on {}", p
        );
    }

    /// Pebble soundness is unconditional: accepting implies membership,
    /// for any k — even below the query's domination width.
    #[test]
    fn pebble_is_sound_at_any_k(p in arb_wd_pattern(), g in arb_graph(), k in 1usize..3) {
        let f = Wdpf::from_pattern(&p).unwrap();
        let reference = eval(&p, &g);
        let mut candidates: Vec<Mapping> = reference.iter().take(5).cloned().collect();
        candidates.push(Mapping::new());
        candidates.push(Mapping::from_strs([("pt1", "a")]));
        for mu in &candidates {
            if check_forest_pebble(&f, &g, mu, k) {
                prop_assert!(reference.contains(mu),
                    "false accept of {} at k={} on {}", mu, k, p);
            }
        }
    }

    /// With k at least the domination width, the pebble evaluator is
    /// exact. Small random patterns have small dw; we compute it.
    #[test]
    fn pebble_is_exact_at_dw(p in arb_wd_pattern(), g in arb_graph()) {
        let f = Wdpf::from_pattern(&p).unwrap();
        // Skip pathological cases where dw computation would be heavy.
        let nodes: usize = f.trees.iter().map(|t| t.len()).sum();
        prop_assume!(nodes <= 5);
        let dw = wdsparql::width::domination_width(&f);
        let reference = eval(&p, &g);
        let mut candidates: Vec<Mapping> = reference.iter().take(5).cloned().collect();
        candidates.push(Mapping::new());
        for mu in &candidates {
            prop_assert_eq!(
                check_forest_pebble(&f, &g, mu, dw),
                reference.contains(mu),
                "disagreement on {} (dw={}) for {}", mu, dw, p
            );
        }
    }
}
