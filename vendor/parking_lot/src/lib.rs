//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s non-poisoning API
//! (`read()` / `write()` / `lock()` return guards directly, no
//! `Result`). Poisoning is handled by propagating the inner value: if a
//! panicking thread poisons the std lock, subsequent accessors recover
//! the guard rather than panicking, matching `parking_lot`'s semantics of
//! never poisoning.

use std::sync;

/// A reader-writer lock with `parking_lot`'s unpoisoned API.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutex with `parking_lot`'s unpoisoned API.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn locks_survive_a_panicking_holder() {
        let l = std::sync::Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the std lock on purpose");
        })
        .join();
        *l.write() = 7; // parking_lot semantics: no poisoning
        assert_eq!(*l.read(), 7);
    }
}
