//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, dependency-free implementation of the `rand` API
//! subset it actually uses: `StdRng::seed_from_u64`, `Rng::gen_range`
//! over integer ranges, and `Rng::gen_bool`. The generator is SplitMix64
//! seeded deterministically — every caller in this repo seeds explicitly,
//! so reproducibility is the point, and statistical quality well beyond
//! "uniform enough for workload generation" is not required.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`;
//! workloads are seeded families, not golden vectors, so only
//! within-process determinism matters.

use std::ops::{Range, RangeInclusive};

/// Types that can describe a sampling range for [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Inclusive lower bound and inclusive upper bound.
    fn bounds(&self) -> (T, T);
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start, self.end - 1)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn bounds(&self) -> ($t, $t) {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                (*self.start(), *self.end())
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform conversion from a raw `u64` draw into `[lo, hi]` for each
/// supported integer type.
pub trait UniformInt: Copy {
    fn from_u64_in(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_u64_in(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128) + 1;
                lo + ((raw as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn from_u64_in(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (raw as u128 % span as u128) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// The `rand::Rng` trait, reduced to the methods this workspace calls.
pub trait Rng {
    /// The next raw 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: UniformInt,
        R: SampleRange<T>,
    {
        let (lo, hi) = range.bounds();
        T::from_u64_in(self.next_u64(), lo, hi)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 bits of mantissa: plenty for workload coin flips.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// The `rand::SeedableRng` trait, reduced to `seed_from_u64`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush on
            // its own and is the standard seeder for larger generators.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
    }
}
