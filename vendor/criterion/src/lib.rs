//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a minimal wall-clock benchmarking harness exposing the
//! `criterion` API subset its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_with_input` /
//! `bench_function` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples of adaptively-chosen iteration count; the
//! median and p99 per-iteration times are reported on stdout as
//! `group/id ... median <time> p99 <time> (<samples> samples)`.
//! `--bench`, `--test` and filter arguments from `cargo bench` are
//! accepted; `--test` (used by `cargo test` over bench targets) runs
//! each benchmark body exactly once, keeping `cargo test -q` fast.
//!
//! Besides the stdout report, `criterion_main!` writes the measured
//! distribution (median plus nearest-rank p50/p90/p99 over the
//! per-sample means) as machine-readable JSON (`BENCH_<target>.json`
//! in the working directory, a path the target pinned with
//! [`set_bench_json_path`], or the path in `$BENCH_JSON_PATH`), so the
//! perf trajectory can be tracked across PRs. Documents written by the
//! medians-only predecessor still parse — their percentile fields are
//! simply absent. Set `BENCH_JSON=0` to disable; nothing is written in
//! `--test` mode.

use std::fmt::Display;
use std::hint;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// One measured benchmark, accumulated across every group of the
/// running bench target. The percentile fields are `None` only for
/// entries parsed back from a medians-only predecessor document; every
/// fresh measurement carries them.
#[derive(Clone, Debug)]
struct JsonEntry {
    name: String,
    median_ns: u128,
    p50_ns: Option<u128>,
    p90_ns: Option<u128>,
    p99_ns: Option<u128>,
    samples: usize,
}

fn json_entries() -> &'static Mutex<Vec<JsonEntry>> {
    static ENTRIES: OnceLock<Mutex<Vec<JsonEntry>>> = OnceLock::new();
    ENTRIES.get_or_init(|| Mutex::new(Vec::new()))
}

fn json_default_path() -> &'static Mutex<Option<String>> {
    static PATH: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    PATH.get_or_init(|| Mutex::new(None))
}

/// Sets the default JSON output path for this bench target, overriding
/// the `BENCH_<target>.json`-in-cwd fallback. Lets a target pin its
/// report to a stable, committed location regardless of the directory
/// `cargo bench` runs it from; `$BENCH_JSON_PATH` still wins.
pub fn set_bench_json_path(path: impl Into<String>) {
    *json_default_path()
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = Some(path.into());
}

/// The bench target name, recovered from the executable path by
/// stripping cargo's trailing `-<hash>` disambiguator.
fn target_name() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let stem = std::path::Path::new(&exe)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default();
    match stem.rsplit_once('-') {
        Some((base, hash)) if hash.len() >= 8 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            base.to_string()
        }
        _ => stem,
    }
}

/// True when the invocation carries a substring filter (a free harness
/// argument), i.e. only a subset of the target's benchmarks ran and the
/// accumulated entries would be a partial — misleading — baseline.
fn filtered_run() -> bool {
    std::env::args().skip(1).any(|a| !a.starts_with('-'))
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn json_unescape(s: &str) -> String {
    let mut out = String::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('u') => {
                    let hex: String = chars.by_ref().take(4).collect();
                    if let Some(c) = u32::from_str_radix(&hex, 16).ok().and_then(char::from_u32) {
                        out.push(c);
                    }
                }
                Some(c) => out.push(c),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Pulls the string value of `"key": "..."` out of one JSON line — the
/// tolerant, line-oriented reader for documents this module wrote itself.
fn line_str_field(line: &str, key: &str) -> Option<String> {
    let rest = line.split_once(&format!("\"{key}\":"))?.1.trim_start();
    let rest = rest.strip_prefix('"')?;
    // The value ends at the first unescaped quote.
    let mut end = 0;
    let bytes = rest.as_bytes();
    while end < bytes.len() {
        match bytes[end] {
            b'\\' => end += 2,
            b'"' => break,
            _ => end += 1,
        }
    }
    Some(json_unescape(rest.get(..end)?))
}

/// Pulls the integer value of `"key": 123` out of one JSON line.
fn line_int_field(line: &str, key: &str) -> Option<u128> {
    let rest = line.split_once(&format!("\"{key}\":"))?.1.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Parses a `BENCH_*.json` document written by [`render_bench_json`]
/// (or its single-target predecessor): the contributing target names and
/// the measured entries. Tolerant and line-oriented — anything it cannot
/// read it drops.
fn parse_bench_json(doc: &str) -> (Vec<String>, Vec<JsonEntry>) {
    let mut targets = Vec::new();
    let mut entries = Vec::new();
    for line in doc.lines() {
        if let Some(t) = line_str_field(line, "target") {
            targets.push(t);
        } else if let Some((_, rest)) = line.split_once("\"targets\":") {
            // Quote-delimited items of the array: after splitting on `"`,
            // the values sit at the odd positions.
            for part in rest.split('"').skip(1).step_by(2) {
                targets.push(json_unescape(part));
            }
        } else if let (Some(name), Some(median_ns), Some(samples)) = (
            line_str_field(line, "name"),
            line_int_field(line, "median_ns"),
            line_int_field(line, "samples"),
        ) {
            entries.push(JsonEntry {
                name,
                median_ns,
                // Absent in medians-only predecessor documents.
                p50_ns: line_int_field(line, "p50_ns"),
                p90_ns: line_int_field(line, "p90_ns"),
                p99_ns: line_int_field(line, "p99_ns"),
                samples: samples as usize,
            });
        }
    }
    targets.sort();
    targets.dedup();
    (targets, entries)
}

/// Renders the accumulated measurements as the `BENCH_*.json` document.
fn render_bench_json(targets: &[String], entries: &[JsonEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let names: Vec<String> = targets
        .iter()
        .map(|t| format!("\"{}\"", json_escape(t)))
        .collect();
    out.push_str(&format!("  \"targets\": [{}],\n", names.join(", ")));
    out.push_str("  \"entries\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let percentiles = match (e.p50_ns, e.p90_ns, e.p99_ns) {
            (Some(p50), Some(p90), Some(p99)) => {
                format!(" \"p50_ns\": {p50}, \"p90_ns\": {p90}, \"p99_ns\": {p99},")
            }
            // A legacy medians-only entry stays medians-only rather
            // than inventing percentiles it never measured.
            _ => String::new(),
        };
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"median_ns\": {},{percentiles} \"samples\": {}}}{comma}\n",
            json_escape(&e.name),
            e.median_ns,
            e.samples
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Merges this run's measurements into any `existing` document at the
/// same path: entries from other targets (and from groups this run did
/// not touch) are kept, entries in re-measured groups are replaced —
/// which is how several bench targets share one committed baseline file
/// without clobbering each other.
fn merge_bench_json(
    existing: Option<&str>,
    target: &str,
    run: &[JsonEntry],
) -> (Vec<String>, Vec<JsonEntry>) {
    let (mut targets, mut merged) = existing.map(parse_bench_json).unwrap_or_default();
    if !targets.iter().any(|t| t == target) {
        targets.push(target.to_string());
        targets.sort();
    }
    // Prune entries of every group re-measured this run, so renamed or
    // removed benchmarks do not linger in the baseline forever.
    let groups: std::collections::BTreeSet<&str> = run
        .iter()
        .filter_map(|e| e.name.split('/').next())
        .collect();
    merged.retain(|e| e.name.split('/').next().is_none_or(|g| !groups.contains(g)));
    merged.extend(run.iter().cloned());
    (targets, merged)
}

/// Writes the measurements collected so far to the `BENCH_*.json`
/// location (see the crate docs), merging with whatever other bench
/// targets already recorded there. Called by `criterion_main!` after all
/// groups have run; a no-op when nothing was measured (e.g. `--test`
/// mode), when `BENCH_JSON=0`, or on a filtered run without an explicit
/// `$BENCH_JSON_PATH` (a partial run must not overwrite the baseline).
pub fn write_bench_json() {
    if std::env::var("BENCH_JSON").as_deref() == Ok("0") {
        return;
    }
    let entries = json_entries().lock().unwrap_or_else(|e| e.into_inner());
    if entries.is_empty() {
        return;
    }
    let explicit = std::env::var("BENCH_JSON_PATH").ok();
    if explicit.is_none() && filtered_run() {
        eprintln!(
            "note: filtered bench run; not updating the BENCH_*.json baseline \
             (set BENCH_JSON_PATH to capture a partial run)"
        );
        return;
    }
    let target = target_name();
    let path = explicit
        .or_else(|| {
            json_default_path()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone()
        })
        .unwrap_or_else(|| format!("BENCH_{target}.json"));
    let existing = std::fs::read_to_string(&path).ok();
    let (targets, merged) = merge_bench_json(existing.as_deref(), &target, &entries);
    let doc = render_bench_json(&targets, &merged);
    if let Err(e) = std::fs::write(&path, doc) {
        eprintln!("warning: could not write {path}: {e}");
    }
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The summarized distribution of one benchmark's per-sample means:
/// the median plus nearest-rank p50/p90/p99. With `sample_size`
/// samples the tail percentiles are the top order statistics — crude,
/// but exactly what a latency-distribution baseline needs.
#[derive(Clone, Copy, Debug)]
struct Measurement {
    median: Duration,
    p50: Duration,
    p90: Duration,
    p99: Duration,
}

impl Measurement {
    /// Summarizes a **sorted** run of per-sample means.
    fn from_sorted(sorted: &[Duration]) -> Measurement {
        Measurement {
            median: sorted[sorted.len() / 2],
            p50: percentile(sorted, 0.50),
            p90: percentile(sorted, 0.90),
            p99: percentile(sorted, 0.99),
        }
    }
}

/// The nearest-rank `q`-percentile of a sorted run: the ⌈q·n⌉-th
/// smallest element.
fn percentile(sorted: &[Duration], q: f64) -> Duration {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result: &'a mut Option<Measurement>,
}

impl Bencher<'_> {
    pub fn iter<T>(&mut self, mut payload: impl FnMut() -> T) {
        if self.test_mode {
            black_box(payload());
            *self.result = Some(Measurement::from_sorted(&[Duration::ZERO]));
            return;
        }
        // Warm-up and per-sample iteration sizing: aim for samples that
        // are long enough to time reliably (≥ ~1ms) without letting the
        // whole benchmark run away.
        let warm_start = Instant::now();
        black_box(payload());
        let once = warm_start.elapsed();
        let iters_per_sample = if once >= Duration::from_millis(1) {
            1
        } else {
            let target = Duration::from_millis(1).as_nanos();
            (target / once.as_nanos().max(1)).clamp(1, 10_000) as usize
        };
        let mut means = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(payload());
            }
            means.push(start.elapsed() / iters_per_sample as u32);
        }
        means.sort();
        *self.result = Some(Measurement::from_sorted(&means));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            result: &mut result,
        };
        routine(&mut bencher, input);
        self.criterion.report(&full, self.sample_size, result);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            result: &mut result,
        };
        routine(&mut bencher);
        self.criterion.report(&full, self.sample_size, result);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads `cargo bench`/`cargo test` harness arguments: flags are
    /// accepted and ignored except `--test` (single-iteration test
    /// mode); the first free argument is a substring filter.
    fn default() -> Criterion {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = name.to_string();
        self.benchmark_group(name.clone())
            .bench_function("", routine);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    fn report(&self, name: &str, samples: usize, measurement: Option<Measurement>) {
        match measurement {
            _ if self.test_mode => println!("test {name} ... ok"),
            Some(m) => {
                println!(
                    "{name:<56} median {:>12.3?} p99 {:>12.3?} ({samples} samples)",
                    m.median, m.p99
                );
                json_entries()
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(JsonEntry {
                        name: name.to_string(),
                        median_ns: m.median.as_nanos(),
                        p50_ns: Some(m.p50.as_nanos()),
                        p90_ns: Some(m.p90.as_nanos()),
                        p99_ns: Some(m.p99.as_nanos()),
                        samples,
                    });
            }
            None => println!("{name:<56} (no measurement: b.iter not called)"),
        }
    }
}

/// `criterion_group!(name, bench_fn, ...)` — collects bench functions
/// into a runner function `name()`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_bench_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_full_measurement() {
        let mut result = None;
        let mut b = Bencher {
            samples: 3,
            test_mode: false,
            result: &mut result,
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        let m = result.expect("iter must record a measurement");
        assert!(
            m.p50 <= m.p90 && m.p90 <= m.p99,
            "percentiles must be ordered"
        );
        assert!(m.median <= m.p99);
    }

    #[test]
    fn percentiles_are_nearest_rank_order_statistics() {
        let sorted: Vec<Duration> = (1..=100).map(Duration::from_nanos).collect();
        assert_eq!(percentile(&sorted, 0.50), Duration::from_nanos(50));
        assert_eq!(percentile(&sorted, 0.90), Duration::from_nanos(90));
        assert_eq!(percentile(&sorted, 0.99), Duration::from_nanos(99));
        let one = [Duration::from_nanos(7)];
        assert_eq!(percentile(&one, 0.99), Duration::from_nanos(7));
        let m = Measurement::from_sorted(&sorted);
        assert_eq!(m.median, Duration::from_nanos(51), "median is sorted[n/2]");
        assert_eq!(m.p99, Duration::from_nanos(99));
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("clique", 8).to_string(), "clique/8");
        assert_eq!(BenchmarkId::from_parameter("3x4").to_string(), "3x4");
    }

    #[test]
    fn bench_json_renders_valid_entries() {
        let entries = vec![
            JsonEntry {
                name: "g/one".into(),
                median_ns: 1500,
                p50_ns: Some(1500),
                p90_ns: Some(1800),
                p99_ns: Some(2500),
                samples: 10,
            },
            JsonEntry {
                // A medians-only entry (parsed from a predecessor
                // document) must render without invented percentiles.
                name: "g/two \"quoted\"".into(),
                median_ns: 7,
                p50_ns: None,
                p90_ns: None,
                p99_ns: None,
                samples: 3,
            },
        ];
        let doc = render_bench_json(&["store_scan".into()], &entries);
        assert!(doc.contains("\"targets\": [\"store_scan\"]"));
        assert!(doc.contains(
            "{\"name\": \"g/one\", \"median_ns\": 1500, \
             \"p50_ns\": 1500, \"p90_ns\": 1800, \"p99_ns\": 2500, \"samples\": 10},"
        ));
        assert!(
            doc.contains("{\"name\": \"g/two \\\"quoted\\\"\", \"median_ns\": 7, \"samples\": 3}")
        );
        // The last entry carries no trailing comma.
        assert!(doc.contains("\"samples\": 3}\n"));
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        // The document round-trips through the tolerant parser.
        let (targets, parsed) = parse_bench_json(&doc);
        assert_eq!(targets, vec!["store_scan".to_string()]);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "g/one");
        assert_eq!((parsed[0].median_ns, parsed[0].samples), (1500, 10));
        assert_eq!(
            (parsed[0].p50_ns, parsed[0].p90_ns, parsed[0].p99_ns),
            (Some(1500), Some(1800), Some(2500))
        );
        assert_eq!(parsed[1].name, "g/two \"quoted\"");
        assert_eq!(parsed[1].p99_ns, None);
    }

    #[test]
    fn parse_accepts_the_single_target_predecessor_schema() {
        let legacy = "{\n  \"target\": \"store_scan\",\n  \"entries\": [\n    \
                      {\"name\": \"a/x\", \"median_ns\": 42, \"samples\": 10}\n  ]\n}\n";
        let (targets, entries) = parse_bench_json(legacy);
        assert_eq!(targets, vec!["store_scan".to_string()]);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].median_ns, 42);
        assert_eq!(
            (entries[0].p50_ns, entries[0].p90_ns, entries[0].p99_ns),
            (None, None, None),
            "predecessor entries have no percentile fields"
        );
    }

    /// A fresh measured entry, percentiles synthesized off the median.
    fn entry(name: &str, median_ns: u128) -> JsonEntry {
        JsonEntry {
            name: name.into(),
            median_ns,
            p50_ns: Some(median_ns),
            p90_ns: Some(median_ns + 1),
            p99_ns: Some(median_ns + 2),
            samples: 10,
        }
    }

    #[test]
    fn merge_keeps_other_targets_and_replaces_remeasured_groups() {
        let existing = render_bench_json(
            &["store_scan".into()],
            &[
                entry("scan/a", 10),
                entry("scan/renamed-away", 11),
                entry("join/b", 20),
            ],
        );
        // A different target re-measures the `scan` group and adds a
        // `write` group: `join` survives untouched, `scan` is replaced
        // wholesale (the stale renamed entry is pruned).
        let run = [entry("scan/a", 15), entry("write/c", 30)];
        let (targets, merged) = merge_bench_json(Some(&existing), "store_write", &run);
        assert_eq!(
            targets,
            vec!["store_scan".to_string(), "store_write".to_string()]
        );
        let find = |n: &str| merged.iter().find(|e| e.name == n).map(|e| e.median_ns);
        assert_eq!(find("join/b"), Some(20));
        assert_eq!(find("scan/a"), Some(15));
        assert_eq!(find("write/c"), Some(30));
        assert_eq!(find("scan/renamed-away"), None);
        // No prior file: the run alone is the baseline.
        let (t, m) = merge_bench_json(None, "store_write", &run);
        assert_eq!(t, vec!["store_write".to_string()]);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\u000ab");
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("clique".into()),
            test_mode: false,
        };
        assert!(c.matches("group/clique/8"));
        assert!(!c.matches("group/grid/8"));
        let all = Criterion {
            filter: None,
            test_mode: false,
        };
        assert!(all.matches("anything"));
    }
}
