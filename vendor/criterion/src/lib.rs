//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a minimal wall-clock benchmarking harness exposing the
//! `criterion` API subset its benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_with_input` /
//! `bench_function` / `finish`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed for
//! `sample_size` samples of adaptively-chosen iteration count; the
//! median per-iteration time is reported on stdout as
//! `group/id ... median <time> (<samples> samples)`. `--bench`,
//! `--test` and filter arguments from `cargo bench` are accepted;
//! `--test` (used by `cargo test` over bench targets) runs each
//! benchmark body exactly once, keeping `cargo test -q` fast.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// An identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher<'a> {
    samples: usize,
    test_mode: bool,
    result: &'a mut Option<Duration>,
}

impl Bencher<'_> {
    pub fn iter<T>(&mut self, mut payload: impl FnMut() -> T) {
        if self.test_mode {
            black_box(payload());
            *self.result = Some(Duration::ZERO);
            return;
        }
        // Warm-up and per-sample iteration sizing: aim for samples that
        // are long enough to time reliably (≥ ~1ms) without letting the
        // whole benchmark run away.
        let warm_start = Instant::now();
        black_box(payload());
        let once = warm_start.elapsed();
        let iters_per_sample = if once >= Duration::from_millis(1) {
            1
        } else {
            let target = Duration::from_millis(1).as_nanos();
            (target / once.as_nanos().max(1)).clamp(1, 10_000) as usize
        };
        let mut medians = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(payload());
            }
            medians.push(start.elapsed() / iters_per_sample as u32);
        }
        medians.sort();
        *self.result = Some(medians[medians.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            result: &mut result,
        };
        routine(&mut bencher, input);
        self.criterion.report(&full, self.sample_size, result);
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let full = format!("{}/{}", self.name, name);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut result = None;
        let mut bencher = Bencher {
            samples: self.sample_size,
            test_mode: self.criterion.test_mode,
            result: &mut result,
        };
        routine(&mut bencher);
        self.criterion.report(&full, self.sample_size, result);
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    /// Reads `cargo bench`/`cargo test` harness arguments: flags are
    /// accepted and ignored except `--test` (single-iteration test
    /// mode); the first free argument is a substring filter.
    fn default() -> Criterion {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let name = name.to_string();
        self.benchmark_group(name.clone())
            .bench_function("", routine);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }

    fn report(&self, name: &str, samples: usize, median: Option<Duration>) {
        match median {
            _ if self.test_mode => println!("test {name} ... ok"),
            Some(d) => println!("{name:<56} median {d:>12.3?} ({samples} samples)"),
            None => println!("{name:<56} (no measurement: b.iter not called)"),
        }
    }
}

/// `criterion_group!(name, bench_fn, ...)` — collects bench functions
/// into a runner function `name()`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// `criterion_main!(group, ...)` — the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_median() {
        let mut result = None;
        let mut b = Bencher {
            samples: 3,
            test_mode: false,
            result: &mut result,
        };
        let mut n = 0u64;
        b.iter(|| {
            n = n.wrapping_add(1);
            n
        });
        assert!(result.is_some());
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("clique", 8).to_string(), "clique/8");
        assert_eq!(BenchmarkId::from_parameter("3x4").to_string(), "3x4");
    }

    #[test]
    fn filter_matches_substrings() {
        let c = Criterion {
            filter: Some("clique".into()),
            test_mode: false,
        };
        assert!(c.matches("group/clique/8"));
        assert!(!c.matches("group/grid/8"));
        let all = Criterion {
            filter: None,
            test_mode: false,
        };
        assert!(all.matches("anything"));
    }
}
