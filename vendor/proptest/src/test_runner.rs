//! Configuration, RNG, and the case-loop machinery behind `proptest!`.

/// Per-`proptest!` block configuration. Only `cases` is honoured.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per property.
    pub cases: u32,
    /// Upper bound on generator/`prop_assume!` rejections before the
    /// property errors out as unsatisfiable.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

/// Deterministic RNG for case generation (SplitMix64 via the vendored
/// `rand` stand-in). Seeded from the property's name so every run and
/// every machine explores the same sequence — failures are reproducible
/// by construction, which replaces upstream's persisted failure seeds.
///
/// Setting `PROPTEST_SEED=<u64>` perturbs every property's sequence at
/// once, letting CI runs explore different cases over time; a failure
/// replays with the same value. `PROPTEST_SEED=0` (or unset) is the
/// canonical per-name sequence.
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

/// The run-wide seed perturbation from `PROPTEST_SEED`, 0 when unset.
/// Panics on an unparseable value — silently ignoring it would fake
/// reproducibility.
pub fn env_seed() -> u64 {
    match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
        Err(_) => 0,
    }
}

impl TestRng {
    pub fn from_name(name: &str) -> TestRng {
        TestRng::from_name_and_seed(name, env_seed())
    }

    pub fn from_name_and_seed(name: &str, seed: u64) -> TestRng {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        // Golden-ratio mix keeps seed 0 the identity, so the default
        // sequence is unchanged.
        h ^= seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17);
        TestRng {
            inner: rand::SeedableRng::seed_from_u64(h),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.inner)
    }

    /// Uniform draw in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case does not count.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// Drives one property: generates inputs from `strategy`, feeds them to
/// `case`, and panics with context on the first falsified case.
/// `#[doc(hidden)]`-style entry point for the `proptest!` macro.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut case: F)
where
    S: crate::strategy::Strategy,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::from_name(name);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while accepted < config.cases {
        attempt += 1;
        let value = match strategy.generate(&mut rng) {
            Some(v) => v,
            None => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest stand-in: {name}: strategy rejected {rejected} \
                         candidates before reaching {} cases",
                        config.cases
                    );
                }
                continue;
            }
        };
        match case(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "proptest stand-in: {name}: prop_assume! rejected {rejected} \
                         candidates before reaching {} cases",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest stand-in: property {name} falsified at case #{accepted} \
                     (attempt {attempt}, replay with PROPTEST_SEED={}): {msg}",
                    env_seed()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn draws(name: &str, seed: u64) -> Vec<u64> {
        let mut rng = TestRng::from_name_and_seed(name, seed);
        (0..8).map(|_| rng.next_u64()).collect()
    }

    #[test]
    fn sequences_are_deterministic_per_name_and_seed() {
        assert_eq!(draws("prop_x", 0), draws("prop_x", 0));
        assert_eq!(draws("prop_x", 7), draws("prop_x", 7));
        assert_ne!(draws("prop_x", 0), draws("prop_y", 0));
    }

    #[test]
    fn seed_perturbs_the_sequence() {
        assert_ne!(draws("prop_x", 0), draws("prop_x", 1));
        assert_ne!(draws("prop_x", 1), draws("prop_x", 2));
    }

    #[test]
    fn seed_zero_is_the_canonical_sequence() {
        // `from_name` with no PROPTEST_SEED in the environment must match
        // the explicit zero seed (the pre-seed behaviour).
        if env_seed() == 0 {
            let mut rng = TestRng::from_name("prop_x");
            let named: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
            assert_eq!(named, draws("prop_x", 0));
        }
    }
}
