//! The `proptest!` family of macros.

/// Declares property tests. Supports the upstream surface this
/// workspace uses: an optional leading
/// `#![proptest_config(ProptestConfig::with_cases(N))]`, then any number
/// of `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ( $($strat,)+ );
            $crate::test_runner::run_property(
                stringify!($name),
                &config,
                &strategy,
                |( $($arg,)+ )| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Asserts inside a `proptest!` body; on failure the case is reported
/// (with its deterministic replay context) instead of unwinding through
/// the generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Rejects the current case without failing the property.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among strategies that share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( $crate::strategy::Strategy::boxed($arm) ),+
        ])
    };
}
