//! `use proptest::prelude::*;` — everything a property test needs.

pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError};
pub use crate::{any, Arbitrary};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
