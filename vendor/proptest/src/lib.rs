//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors a small property-testing runner exposing the `proptest` API
//! subset its test suites use:
//!
//! * [`strategy::Strategy`] with `prop_map`, `prop_filter`,
//!   `prop_recursive`, and `boxed`;
//! * strategies for integer ranges, tuples, [`prelude::Just`],
//!   `any::<bool>()` / `any::<u64>()`, simple `"[class]{m,n}"` regex
//!   string literals, [`collection::vec`] and [`collection::btree_map`];
//! * the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assume!`] and [`prop_oneof!`] macros;
//! * [`test_runner::ProptestConfig`] (`with_cases`).
//!
//! Differences from upstream, deliberately accepted: no shrinking (a
//! failing case reports its replay seed instead of a minimal one), and
//! the RNG is deterministic per test name so CI runs are reproducible.
//! Set `PROPTEST_SEED=<u64>` to perturb every property's case sequence
//! at once (failures report the seed to replay with); unset or `0` is
//! the canonical sequence.

pub mod collection;
mod macros;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// `any::<T>()` — the canonical strategy for a whole type. Only the
/// types the workspace asks for are wired up.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> u32 {
        rng.next_u64() as u32
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut test_runner::TestRng) -> usize {
        rng.next_u64() as usize
    }
}

impl Arbitrary for i32 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> i32 {
        rng.next_u64() as i32
    }
}

/// Strategy returned by [`any`].
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> strategy::Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut test_runner::TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}
