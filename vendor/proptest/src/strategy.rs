//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of values of type `Value`.
///
/// `generate` returns `None` when the candidate was rejected (e.g. by
/// `prop_filter`); the runner retries, counting rejections against
/// `ProptestConfig::max_global_rejects`. There is no shrinking: the
/// deterministic per-test RNG makes failures replayable as-is.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<R, F>(self, _whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Recursive strategies. `depth` levels of `recurse` are stacked on
    /// top of `self`; `_desired_size` and `_expected_branch_size` are
    /// accepted for API compatibility but unused (sizing is left to the
    /// branching probabilities of the recursive strategy itself).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            depth,
            recurse: Rc::new(move |inner| recurse(inner).boxed()),
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted, clonable, type-erased strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        self.0.generate(rng)
    }
}

/// `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(|v| (self.f)(v))
    }
}

/// `prop_recursive` combinator: the strategy tree is rebuilt to the
/// configured depth on each generation (construction is cheap; the
/// branch-vs-leaf choice inside `recurse`'s `prop_oneof!` is what gives
/// variable-depth values).
pub struct Recursive<V> {
    base: BoxedStrategy<V>,
    depth: u32,
    #[allow(clippy::type_complexity)]
    recurse: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
}

impl<V> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let mut strat = self.base.clone();
        for _ in 0..self.depth {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// Uniform choice among boxed alternatives — the engine of
/// [`prop_oneof!`](crate::prop_oneof).
pub struct OneOf<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> OneOf<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> OneOf<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> Option<V> {
        let arm = rng.below(self.arms.len());
        self.arms[arm].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                Some((self.start as i128 + off) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() as i128) - (*self.start() as i128) + 1;
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                Some((*self.start() as i128 + off) as $t)
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// String strategies from a `&'static str` regex literal, supporting the
/// subset `proptest` tests in this workspace actually write: a sequence
/// of literal characters or `[...]` classes (with `a-z` ranges), each
/// optionally quantified by `{m}`, `{m,n}`, `?`, `+` or `*` (the open
/// quantifiers capped at 8 repetitions).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Option<String> {
        let atoms = parse_simple_regex(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = *lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(chars[rng.below(chars.len())]);
            }
        }
        Some(out)
    }
}

/// Parses the supported regex subset into `(alternatives, min, max)`
/// repetition units. Panics on syntax outside the subset so a bad
/// pattern fails loudly instead of silently generating garbage.
fn parse_simple_regex(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut atoms: Vec<(Vec<char>, usize, usize)> = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alternatives: Vec<char> = match c {
            '[' => {
                let mut class = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    let c = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated [ in regex {pattern:?}"));
                    match c {
                        ']' => break,
                        '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "bad range {lo}-{hi} in regex {pattern:?}");
                            // `lo` itself is already in `class`.
                            for x in (lo as u32 + 1)..=(hi as u32) {
                                class.push(char::from_u32(x).unwrap());
                            }
                        }
                        '\\' => {
                            let esc = chars
                                .next()
                                .unwrap_or_else(|| panic!("dangling \\ in regex {pattern:?}"));
                            class.push(esc);
                            prev = Some(esc);
                        }
                        c => {
                            class.push(c);
                            prev = Some(c);
                        }
                    }
                }
                assert!(!class.is_empty(), "empty class in regex {pattern:?}");
                class
            }
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling \\ in regex {pattern:?}"));
                vec![esc]
            }
            '.' | '(' | ')' | '|' | '^' | '$' => {
                panic!("regex feature {c:?} in {pattern:?} is outside the vendored proptest subset")
            }
            c => vec![c],
        };
        let (lo, hi) = match chars.peek() {
            Some('{') => {
                chars.next();
                let spec: String = chars.by_ref().take_while(|&c| c != '}').collect();
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad {m,n}"),
                        n.trim().parse().expect("bad {m,n}"),
                    ),
                    None => {
                        let m: usize = spec.trim().parse().expect("bad {m}");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            _ => (1, 1),
        };
        assert!(
            lo <= hi,
            "bad quantifier {{{lo},{hi}}} in regex {pattern:?}"
        );
        atoms.push((alternatives, lo, hi));
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy-unit-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (3usize..9).generate(&mut r).unwrap();
            assert!((3..9).contains(&x));
            let y = (0u64..3000).generate(&mut r).unwrap();
            assert!(y < 3000);
        }
    }

    #[test]
    fn map_filter_compose() {
        let mut r = rng();
        let s = (0usize..10)
            .prop_map(|x| x * 2)
            .prop_filter("even", |&x| x < 10);
        for _ in 0..100 {
            if let Some(v) = s.generate(&mut r) {
                assert!(v % 2 == 0 && v < 10);
            }
        }
    }

    #[test]
    fn regex_subset_generates_matching_strings() {
        let mut r = rng();
        let s = "[a-c]{2,4}";
        for _ in 0..200 {
            let v = s.generate(&mut r).unwrap();
            assert!((2..=4).contains(&v.len()), "{v:?}");
            assert!(v.chars().all(|c| ('a'..='c').contains(&c)), "{v:?}");
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut r = rng();
        let s = OneOf::new(vec![
            Just(0usize).boxed(),
            Just(1usize).boxed(),
            Just(2usize).boxed(),
        ]);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.generate(&mut r).unwrap()] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let s = Just(T::Leaf).boxed().prop_recursive(3, 8, 2, |inner| {
            OneOf::new(vec![
                inner.clone().boxed(),
                (inner.clone(), inner)
                    .prop_map(|(l, r)| T::Node(Box::new(l), Box::new(r)))
                    .boxed(),
            ])
        });
        let mut r = rng();
        let mut max_seen = 0;
        for _ in 0..300 {
            max_seen = max_seen.max(depth(&s.generate(&mut r).unwrap()));
        }
        assert!(max_seen >= 1, "recursion never branched");
        assert!(max_seen <= 3, "depth bound exceeded: {max_seen}");
    }
}
