//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::collections::BTreeMap;
use std::ops::{Range, RangeInclusive};

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    pub min: usize,
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// How many times to retry a rejected element before giving up on the
/// whole collection candidate (the runner then retries globally).
const ELEMENT_RETRIES: usize = 64;

fn gen_element<S: Strategy>(element: &S, rng: &mut TestRng) -> Option<S::Value> {
    (0..ELEMENT_RETRIES).find_map(|_| element.generate(rng))
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
        (0..n).map(|_| gen_element(&self.element, rng)).collect()
    }
}

/// `proptest::collection::btree_map(key, value, size)`. Duplicate keys
/// collapse, so the generated map may be smaller than the drawn size —
/// same contract as upstream.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<BTreeMap<K::Value, V::Value>> {
        let n = self.size.min + rng.below(self.size.max - self.size.min + 1);
        let mut out = BTreeMap::new();
        for _ in 0..n {
            out.insert(gen_element(&self.key, rng)?, gen_element(&self.value, rng)?);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::Strategy;

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let mut rng = TestRng::from_name("collection-vec");
        let s = vec(0usize..5, 3..9);
        for _ in 0..200 {
            let v = s.generate(&mut rng).unwrap();
            assert!((3..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = TestRng::from_name("collection-vec-exact");
        let s = vec(0usize..5, 5);
        assert_eq!(s.generate(&mut rng).unwrap().len(), 5);
    }

    #[test]
    fn btree_map_respects_bounds() {
        let mut rng = TestRng::from_name("collection-map");
        let s = btree_map(0usize..6, 0usize..6, 0..5);
        for _ in 0..200 {
            let m = s.generate(&mut rng).unwrap();
            assert!(m.len() < 5);
            assert!(m.iter().all(|(&k, &v)| k < 6 && v < 6));
        }
    }
}
