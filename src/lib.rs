//! # wdsparql
//!
//! A from-scratch Rust implementation of
//!
//! > Miguel Romero, *The Tractability Frontier of Well-designed SPARQL
//! > Queries*, PODS 2018 (arXiv:1712.08809),
//!
//! covering the full pipeline: a ground RDF store, the AND/OPT/UNION
//! algebra with well-designedness checking, pattern trees/forests, the
//! homomorphism/core/treewidth toolkit, the existential k-pebble game, the
//! width measures (domination width, branch treewidth, local width), the
//! Theorem 1 polynomial-time evaluator, and the §4 W\[1\]-hardness
//! machinery.
//!
//! ## Quickstart
//!
//! ```
//! use wdsparql::{Engine, Query, Strategy};
//! use wdsparql::rdf::RdfGraph;
//!
//! let graph = RdfGraph::from_strs([
//!     ("alice", "knows", "bob"),
//!     ("bob", "email", "bob@example.org"),
//! ]);
//! let query = Query::parse("(?x, knows, ?y) OPT (?y, email, ?e)").unwrap();
//! let engine = Engine::new(graph);
//!
//! let solutions = engine.evaluate(&query);
//! assert_eq!(solutions.len(), 1);
//! assert_eq!(query.domination_width(), 1); // tractable class (Theorem 3)
//!
//! let mu = solutions.iter().next().unwrap();
//! assert!(engine.check(&query, mu, Strategy::Auto));
//! ```
//!
//! The crates are re-exported as modules:
//!
//! * [`rdf`] — terms, triples, mappings, indexed graphs, N-Triples I/O;
//! * [`store`] — the dictionary-encoded triple store: sorted permutation
//!   indexes, merge joins, and the concurrent [`TripleStore`] service;
//! * [`algebra`] — patterns, parser, well-designedness, reference semantics;
//! * [`tree`] — wdPTs/wdPFs, `wdpf` translation, NR normal form;
//! * [`hom`] — t-graphs, homomorphisms, cores, Gaifman graphs, treewidth;
//! * [`pebble`] — the existential k-pebble game;
//! * [`width`] — domination width, branch treewidth, local width;
//! * [`core`] — the evaluation engine ([`Engine`], [`Query`]);
//! * [`hardness`] — grid minors, Lemma 2/3, the p-CLIQUE reduction;
//! * [`workloads`] — seeded graph/query generators incl. the paper's
//!   families;
//! * [`project`] — SELECT/projection (pp-wdPTs), where the dichotomy of
//!   Theorem 3 breaks (§5);
//! * [`contain`] — containment/equivalence/subsumption static analysis.

#![forbid(unsafe_code)]

pub use wdsparql_algebra as algebra;
pub use wdsparql_contain as contain;
pub use wdsparql_core as core;
pub use wdsparql_hardness as hardness;
pub use wdsparql_hom as hom;
pub use wdsparql_pebble as pebble;
pub use wdsparql_project as project;
pub use wdsparql_rdf as rdf;
pub use wdsparql_store as store;
pub use wdsparql_tree as tree;
pub use wdsparql_width as width;
pub use wdsparql_workloads as workloads;

pub use wdsparql_contain::{decide_containment, decide_equivalence, SearchBudget, Verdict};
pub use wdsparql_core::{Engine, Query, QueryError, Strategy, WidthReport};
pub use wdsparql_project::ProjectedQuery;
pub use wdsparql_store::{EncodedGraph, ShardedStore, TripleStore};
