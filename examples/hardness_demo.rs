//! The §4.2 reduction, end to end: p-CLIQUE ≤fpt p-co-wdEVAL.
//!
//! For k = 2 (does H have an edge?) we build the full instance
//! (P, G, µ) from the clique-child family and verify that
//! `H has a k-clique ⟺ µ ∉ ⟦P⟧_G` using the naive (exact) evaluator.
//!
//! Run with: `cargo run --release --example hardness_demo`

use wdsparql::core::check_forest;
use wdsparql::hardness::{clique_family_parameter, has_k_clique, reduce_clique};
use wdsparql::hom::UGraph;
use wdsparql::tree::Wdpf;
use wdsparql::workloads::clique_child_tree;

fn main() {
    let k = 2;
    let m = clique_family_parameter(k).max(2);
    println!("p-CLIQUE → p-co-wdEVAL reduction, k = {k} (family member Q_{m})\n");

    let cases: Vec<(&str, UGraph)> = vec![
        ("path P4", UGraph::path(4)),
        ("cycle C5", UGraph::cycle(5)),
        ("clique K4", UGraph::complete(4)),
        ("one edge + isolated", {
            let mut g = UGraph::new(5);
            g.add_edge(1, 3);
            g
        }),
    ];

    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>12}   agree?",
        "H", "|B|", "|G|", "k-clique", "µ ∈ ⟦P⟧_G"
    );
    println!("{}", "-".repeat(72));
    for (label, h) in cases {
        let forest = Wdpf::new(vec![clique_child_tree(m)]);
        let inst = reduce_clique(forest, &h, k, m - 1).expect("reduction succeeds");
        let clique = has_k_clique(&h, k);
        let member = check_forest(&inst.forest, &inst.graph, &inst.mu);
        let agree = clique != member;
        println!(
            "{:<22} {:>8} {:>10} {:>10} {:>12}   {}",
            label,
            inst.lemma2.b.s.len(),
            inst.graph.len(),
            clique,
            member,
            if agree { "yes" } else { "NO (bug!)" }
        );
        assert!(agree, "reduction must be correct");
    }

    println!("\nEvery row satisfies the §4.2 correctness claim:");
    println!("H contains a k-clique  ⟺  µ ∉ ⟦P⟧_G.");
    println!("\n(The paper's excluded-grid bound w(·) is replaced by explicit");
    println!("minor maps on the clique family — see DESIGN.md, Substitutions.)");
}
