//! The tractability frontier, computed: width measures across the paper's
//! query families, reproducing the separations the paper proves.
//!
//! * `F_k` (Example 4): dw = 1 for every k, but *not* locally tractable —
//!   the GtG sets are dominated non-trivially.
//! * `T'_k` (§3.2): bw = 1 (tractable) yet local width = k−1.
//! * `Q_k` (clique child): bw = dw = k−1 — the intractable side.
//!
//! Run with: `cargo run --release --example width_analysis`

use wdsparql::tree::Wdpf;
use wdsparql::width::{branch_treewidth, domination_width, local_width};
use wdsparql::workloads::{clique_child_tree, fk_forest, tprime_tree};

fn main() {
    println!("The tractability frontier (Theorem 3: PTIME ⟺ bounded dw)\n");
    println!(
        "{:<10} {:>6} {:>6} {:>8}   verdict",
        "family", "dw", "bw", "local"
    );
    println!("{}", "-".repeat(48));

    for k in 2..=4 {
        let f = fk_forest(k);
        let dw = domination_width(&f);
        let local = wdsparql::width::local_width_forest(&f);
        println!(
            "{:<10} {:>6} {:>6} {:>8}   tractable (dominated, not locally tractable)",
            format!("F_{k}"),
            dw,
            "-",
            local
        );
    }
    println!();
    for k in 2..=4 {
        let t = tprime_tree(k);
        let bw = branch_treewidth(&t);
        let local = local_width(&t);
        let f = Wdpf::new(vec![t]);
        let dw = domination_width(&f);
        println!(
            "{:<10} {:>6} {:>6} {:>8}   tractable (bw bounded; local width grows)",
            format!("T'_{k}"),
            dw,
            bw,
            local
        );
        assert_eq!(dw, bw, "Proposition 5");
    }
    println!();
    for k in 2..=4 {
        let t = clique_child_tree(k);
        let bw = branch_treewidth(&t);
        let local = local_width(&t);
        let f = Wdpf::new(vec![t]);
        let dw = domination_width(&f);
        println!(
            "{:<10} {:>6} {:>6} {:>8}   INTRACTABLE class (width grows with k)",
            format!("Q_{k}"),
            dw,
            bw,
            local
        );
        assert_eq!(dw, bw, "Proposition 5");
    }

    println!("\nReadings:");
    println!("* F_k shows domination width < any per-element width: its GtG sets");
    println!("  contain elements of ctw k−1 that are dominated by ctw-1 elements.");
    println!("* T'_k separates bounded branch treewidth from local tractability.");
    println!("* Q_k has unbounded width: by Theorem 2 its evaluation problem is");
    println!("  W[1]-hard, so no PTIME algorithm exists unless FPT = W[1].");
}
