//! A bibliographic workload: papers with optional abstracts and awards,
//! citation chains, and a UNION of venue alternatives.
//!
//! Run with: `cargo run --example bibliography`

use wdsparql::workloads::bibliography;
use wdsparql::{Engine, Query};

fn main() {
    let graph = bibliography(150, 7);
    println!(
        "Bibliography: {} triples over {} IRIs.",
        graph.len(),
        graph.dom_size()
    );
    let engine = Engine::new(graph);

    // Q1: PODS papers with optional abstract and optional award.
    let q1 =
        Query::parse("(((?p, venue, PODS) OPT (?p, abstract, ?a)) OPT (?p, award, ?w))").unwrap();
    let sols1 = engine.evaluate(&q1);
    println!("\nQ1 {q1}");
    println!("   {} PODS papers; widths: {}", sols1.len(), {
        let r = engine.analyze(&q1);
        format!(
            "dw={}, bw={}, local={}",
            r.domination_width, r.branch_treewidth, r.local_width
        )
    });

    // Q2: citations into award-winning papers, optionally following one
    //     more citation hop — a chain-shaped OPT nesting (bw = 1).
    let q2 = Query::parse(
        "((?p, cites, ?q) AND (?q, award, BestPaper)) OPT ((?q, cites, ?r) OPT (?r, abstract, ?ra))",
    )
    .unwrap();
    let sols2 = engine.evaluate(&q2);
    println!("\nQ2 {q2}");
    println!("   {} solutions", sols2.len());
    println!("{}", engine.analyze(&q2));

    // Q3: venue alternatives via UNION (a 2-tree wdPF), each branch
    //     optionally enriched with the year.
    let q3 = Query::parse(
        "((?p, venue, PODS) OPT (?p, year, ?y)) UNION ((?p, venue, ICDT) OPT (?p, year, ?y))",
    )
    .unwrap();
    let sols3 = engine.evaluate(&q3);
    println!("\nQ3 {q3}");
    println!("   {} theory papers", sols3.len());

    // Cross-validate enumeration against the reference semantics on Q1.
    let reference =
        wdsparql::algebra::eval(q1.pattern(), engine.graph().expect("memory-backed engine"));
    assert_eq!(sols1, reference);
    println!("\nEnumeration matches the reference Pérez-et-al. semantics on Q1.");
}
