//! SELECT/projection over a university dataset — and the §5 frontier:
//! projection breaks the Theorem 3 dichotomy.
//!
//! Run with: `cargo run --release --example projection`

use wdsparql::project::{
    analyze_projected, anchored_graph, check_projected, clique_projection_query,
    enumerate_projected, projection_multiplicities,
};
use wdsparql::rdf::{Mapping, Variable};
use wdsparql::workloads::{turan_graph, university};
use wdsparql::ProjectedQuery;

fn main() {
    // ---- Part 1: SELECT on realistic data ------------------------------
    let g = university(3, 42);
    println!("University dataset: {} triples.", g.len());

    // Professors with the courses they teach and, optionally, an office.
    let q = ProjectedQuery::parse(
        "SELECT ?p ?o WHERE { ?p type Professor . ?p teaches ?c OPTIONAL { ?p office ?o } }",
    )
    .expect("well-designed query with projection");
    println!("\nQuery: {q}");

    let sols = enumerate_projected(&q, &g);
    println!("\nProjected solutions ({}):", sols.len());
    for mu in sols.iter().take(8) {
        println!("  {mu}");
    }
    if sols.len() > 8 {
        println!("  ... and {} more", sols.len() - 8);
    }

    // Multiplicities: how many full solutions collapse onto each output
    // row (the bag-semantics count a SPARQL engine would report).
    let mult = projection_multiplicities(&q, &g);
    let collapsed: usize = mult.values().filter(|&&m| m > 1).count();
    println!("\n{collapsed} projected rows absorb more than one full solution.");

    // Membership through the projection: existential witness search.
    if let Some(mu) = sols.iter().next() {
        assert!(check_projected(&q, &g, mu));
        println!("Membership check agrees with enumeration for {mu}.");
    }

    // Width report in the spirit of Kroll–Pichler–Skritek (ICDT'16).
    let report = analyze_projected(&q);
    println!("\nProjected width report: {report}");

    // ---- Part 2: the frontier breaks ------------------------------------
    // R_k has domination width 1 — without projection, its evaluation is
    // PTIME by Theorem 1. With SELECT hiding the clique variables,
    // membership *is* k-CLIQUE.
    println!("\n--- projection vs the dichotomy (paper §5) ---");
    let k = 4;
    let rk = clique_projection_query(k);
    println!(
        "R_{k}: dw = {} (tractable class without projection)",
        wdsparql::width::domination_width(rk.forest())
    );

    // A Turán(12, 3) adversary has no K_4: the projected membership check
    // must refute every anchored clique candidate.
    let (gneg, hub) = anchored_graph(&turan_graph(4 * (k - 1), k - 1, "r"), "hub");
    let mut mu = Mapping::new();
    mu.bind(Variable::new("u"), hub);
    let t0 = std::time::Instant::now();
    let answer = check_projected(&rk, &gneg, &mu);
    println!(
        "Turán adversary (no K_{k}): projected membership = {answer} ({:?})",
        t0.elapsed()
    );
    assert!(!answer);

    // The same graph, unprojected: binding all variables makes the check
    // a per-triple lookup.
    let (gpos, hub) = anchored_graph(&turan_graph(3 * k, k, "r"), "hub");
    let mut mu_pos = Mapping::new();
    mu_pos.bind(Variable::new("u"), hub);
    let t0 = std::time::Instant::now();
    let answer = check_projected(&rk, &gpos, &mu_pos);
    println!(
        "Turán(12, {k}) with a K_{k}: projected membership = {answer} ({:?})",
        t0.elapsed()
    );
    assert!(answer);
    println!("\nSame query class, same data scale: the *projection* alone moved the");
    println!("problem from PTIME (Theorem 1) to NP-hard — the §5 frontier.");
}
