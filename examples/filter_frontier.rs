//! §5 of the paper, executable: why the dichotomy stops at FILTER.
//!
//! Well-designed patterns with FILTER express conjunctive queries with
//! inequalities; for each graph class `H` this yields query classes whose
//! co-evaluation is polynomially equivalent to the embedding problem
//! `EMB(H)`. For paths, `EMB` is NP-hard yet fixed-parameter tractable —
//! so no PTIME/W[1]-hard dichotomy like Theorem 3 can hold with FILTER.
//!
//! This example runs the encoding: plain homomorphism (no FILTER) versus
//! embedding (with the pairwise-inequality FILTER) of paths and cliques
//! into target graphs.
//!
//! Run with: `cargo run --release --example filter_frontier`

use wdsparql::algebra::{eval, eval_filter};
use wdsparql::hardness::{emb_brute_force, emb_query, emb_target, emb_via_filter};
use wdsparql::hom::UGraph;

fn main() {
    println!("FILTER turns homomorphism into embedding (§5)\n");
    println!(
        "{:<16} {:<14} {:>12} {:>12} {:>12}",
        "pattern H", "target H'", "hom (no ≠)", "emb (FILTER)", "brute force"
    );
    println!("{}", "-".repeat(72));

    let cases: Vec<(&str, UGraph, &str, UGraph)> = vec![
        ("path P6", UGraph::path(6), "cycle C5", UGraph::cycle(5)),
        ("path P4", UGraph::path(4), "cycle C5", UGraph::cycle(5)),
        ("cycle C6", UGraph::cycle(6), "cycle C3", UGraph::cycle(3)),
        (
            "clique K3",
            UGraph::complete(3),
            "cycle C5",
            UGraph::cycle(5),
        ),
        (
            "clique K3",
            UGraph::complete(3),
            "clique K5",
            UGraph::complete(5),
        ),
    ];

    for (hl, h, tl, target) in cases {
        let (pattern, filter) = emb_query(&h);
        let g = emb_target(&target);
        let hom = !eval(&pattern, &g).is_empty();
        let emb = !eval_filter(&pattern, &filter, &g).is_empty();
        let brute = emb_brute_force(&h, &target);
        assert_eq!(emb, brute, "FILTER encoding must agree with brute force");
        println!(
            "{:<16} {:<14} {:>12} {:>12} {:>12}",
            hl, tl, hom, emb, brute
        );
        assert!(emb_via_filter(&h, &target) == brute);
    }

    println!();
    println!("Readings:");
    println!("* C6 → C3: a homomorphism exists (wrap around) but no embedding —");
    println!("  the FILTER (pairwise ≠) is what separates the two problems.");
    println!("* Path embeddings are exactly EMB(paths): NP-hard in general but");
    println!("  fixed-parameter tractable, so adding FILTER breaks the paper's");
    println!("  'PTIME or W[1]-hard' dichotomy (open problem, §5).");

    // FILTER is also available in the surface syntax: top-level clauses
    // with =, !=, BOUND, !, &&, || and error-as-false semantics.
    println!("\n--- surface syntax ---");
    let (query, filter) = wdsparql::Query::parse_with_filter(
        "{ ?x knows ?y OPTIONAL { ?y email ?e } FILTER(?x != ?y && BOUND(?e)) }",
    )
    .expect("well-designed query with a top-level filter");
    let g = wdsparql::rdf::RdfGraph::from_strs([
        ("alice", "knows", "bob"),
        ("alice", "knows", "alice"),
        ("bob", "email", "b@x.org"),
        ("alice", "knows", "carol"),
    ]);
    let engine = wdsparql::Engine::new(g);
    let sols = engine.evaluate_filtered(&query, &filter);
    println!("query: {query} FILTER(?x != ?y && BOUND(?e))");
    for mu in &sols {
        println!("  {mu}");
    }
    assert_eq!(
        sols.len(),
        1,
        "self-knowledge and carol (no email) drop out"
    );
}
