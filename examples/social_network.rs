//! A social-network workload: OPTIONAL-heavy queries over partial profile
//! data — the scenario that motivates well-designed SPARQL in the first
//! place (return what is known, never drop a person for missing data).
//!
//! Run with: `cargo run --example social_network`

use wdsparql::workloads::social_network;
use wdsparql::{Engine, Query, Strategy};

fn main() {
    let graph = social_network(120, 42);
    println!(
        "Social network: {} triples over {} distinct IRIs.",
        graph.len(),
        graph.dom_size()
    );
    let engine = Engine::new(graph);

    // Q1: every person, optionally their email, optionally their city.
    let q1 = Query::parse("(((?p, type, Person) OPT (?p, email, ?e)) OPT (?p, city, ?c))").unwrap();
    let sols = engine.evaluate(&q1);
    let with_email = sols.iter().filter(|m| m.len() >= 2).count();
    println!("\nQ1 {q1}");
    println!(
        "   {} solutions, {} enriched with optional data",
        sols.len(),
        with_email
    );
    let r1 = engine.analyze(&q1);
    println!(
        "   dw = {}, bw = {} (tractable)",
        r1.domination_width, r1.branch_treewidth
    );

    // Q2: friendships with optional topic overlap of what they write —
    //     a nested OPT whose inner branch only extends the outer one.
    let q2 =
        Query::parse("((?a, knows, ?b) OPT ((?b, wrote, ?post) OPT (?post, topic, ?t)))").unwrap();
    let sols2 = engine.evaluate(&q2);
    println!("\nQ2 {q2}");
    println!("   {} solutions", sols2.len());
    println!("{}", engine.analyze(&q2));

    // Q3: a UNION of alternatives — contact via email or via city
    //     (union of two well-designed branches, a wdPF with 2 trees).
    let q3 = Query::parse(
        "((?p, knows, ?q) OPT (?q, email, ?e)) UNION ((?p, knows, ?q) OPT (?q, city, ?c))",
    )
    .unwrap();
    let sols3 = engine.evaluate(&q3);
    println!("\nQ3 {q3}");
    println!(
        "   {} solutions across {} trees",
        sols3.len(),
        q3.forest().len()
    );

    // Spot-check the Theorem 1 evaluator against the naive one on every
    // solution of Q2 and on mutated non-solutions.
    let mut checked = 0;
    for mu in sols2.iter().take(50) {
        assert!(engine.check(&q2, mu, Strategy::Naive));
        assert!(engine.check(&q2, mu, Strategy::Pebble { k: 1 }));
        checked += 1;
    }
    println!("\nVerified {checked} memberships with both the naive and the pebble evaluator.");
}
