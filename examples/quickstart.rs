//! Quickstart: load data, parse a well-designed query, analyse its widths,
//! evaluate it, and verify a membership with every strategy.
//!
//! Run with: `cargo run --example quickstart`

use wdsparql::rdf::{parse_ntriples, Mapping};
use wdsparql::{Engine, Query, Strategy};

fn main() {
    // 1. An RDF graph, as N-Triples-style text.
    let data = "\
        alice knows bob .\n\
        alice knows carol .\n\
        bob   email bob@example.org .\n\
        bob   city  berlin .\n\
        carol city  paris .\n\
        dave  knows alice .\n";
    let graph = parse_ntriples(data).expect("well-formed data");
    println!("Loaded {} triples.", graph.len());

    // 2. A well-designed pattern: who does ?x know, optionally with the
    //    acquaintance's email, and optionally *their* city too.
    let query = Query::parse("((?x, knows, ?y) OPT (?y, email, ?e)) OPT (?y, city, ?c)")
        .expect("well-designed query");
    println!("\nQuery: {query}");
    println!("\nPattern forest:\n{}", query.forest());

    // 3. Width analysis: this class is on the tractable side of the
    //    frontier (Theorem 3: bounded domination width ⟺ PTIME).
    let engine = Engine::new(graph);
    let report = engine.analyze(&query);
    println!("{report}\n");
    assert_eq!(report.domination_width, 1);

    // 4. Full evaluation.
    let solutions = engine.evaluate(&query);
    println!("Solutions ({}):", solutions.len());
    for mu in &solutions {
        println!("  {mu}");
    }

    // 5. Membership checks, four ways.
    let member = Mapping::from_strs([
        ("x", "alice"),
        ("y", "bob"),
        ("e", "bob@example.org"),
        ("c", "berlin"),
    ]);
    let not_member = Mapping::from_strs([("x", "alice"), ("y", "bob")]); // not maximal
    for strategy in [
        Strategy::Reference,
        Strategy::Naive,
        Strategy::Pebble { k: 1 },
        Strategy::Auto,
    ] {
        assert!(engine.check(&query, &member, strategy));
        assert!(!engine.check(&query, &not_member, strategy));
    }
    println!("\nAll four strategies agree: µ ∈ ⟦P⟧_G for the maximal mapping,");
    println!("and the bare (alice, bob) mapping is correctly rejected");
    println!("(its OPT extensions exist, so it is not maximal).");
}
