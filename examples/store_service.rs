//! The triple-store service end to end: stream a synthetic bulk load
//! into a shared `TripleStore`, inspect its stats, and serve the same
//! well-designed query from four threads concurrently — with the
//! epoch-keyed LRU cache absorbing the repeats.
//!
//! Run with: `cargo run --example store_service`

use std::sync::Arc;
use wdsparql::rdf::{iri, tp, var};
use wdsparql::workloads::triple_stream;
use wdsparql::{Engine, Query, TripleStore};

fn main() {
    // 1. Bulk-load a generated workload in batches, as an ingest
    //    pipeline would: each batch appends one sorted delta segment
    //    (no base rewrite); the adaptive compaction policy folds the
    //    segments back into the base as they accumulate.
    let store = Arc::new(TripleStore::new());
    let mut stream = triple_stream(2_000, 50_000, 6, 7);
    let mut batch_no = 0;
    loop {
        let batch: Vec<_> = stream.by_ref().take(10_000).collect();
        if batch.is_empty() {
            break;
        }
        batch_no += 1;
        let added = store.bulk_load(batch);
        let st = store.stats();
        println!(
            "batch {batch_no}: +{added} new triples (epoch {}, {} delta row(s) in {} segment(s))",
            store.epoch(),
            st.delta_rows,
            st.segments
        );
    }
    // Fold whatever is still pending (and build the PSO permutation for
    // subject-sorted merge joins). Contents are unchanged, so cached
    // results — keyed by epoch — survive.
    store.compact();

    // 2. The stats snapshot drives the planner: per-predicate
    //    cardinalities, read straight off the POS offsets.
    let stats = store.stats();
    println!("\n{stats}\n");

    // 3. Concurrent queries through the store-backed engine. Every
    //    thread shares the same store; pattern matching inside the
    //    evaluator resolves through the sorted permutation ranges under
    //    the read lock.
    let query_text = "((?x, p0, ?y) OPT (?y, p1, ?z)) OPT (?y, p2, ?w)";
    let mut handles = Vec::new();
    for worker in 0..4 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let engine = Engine::from_store(store);
            let query = Query::parse(query_text).expect("well-designed");
            let solutions = engine.evaluate(&query);
            (worker, solutions.len())
        }));
    }
    for h in handles {
        let (worker, n) = h.join().expect("worker finished");
        println!("worker {worker}: {n} solutions");
    }

    // 4. The service's conjunctive (BGP) path: planned
    //    most-selective-first — plan and solutions from one snapshot,
    //    so they can never diverge — answered from the cache on repeats.
    let patterns = [
        tp(var("x"), iri("p0"), var("y")),
        tp(var("y"), iri("p1"), var("z")),
    ];
    let planned = store.query_with_plan(&patterns);
    println!(
        "\nBGP plan (epoch {}): {}",
        planned.epoch,
        planned
            .plan
            .iter()
            .map(|&i| patterns[i].to_string())
            .collect::<Vec<_>>()
            .join(" ⋈ ")
    );
    for round in 1..=3 {
        let sols = store.query(&patterns);
        let cache = store.cache_stats();
        println!(
            "round {round}: {} join solutions | cache: {} hits, {} misses",
            sols.len(),
            cache.hits,
            cache.misses
        );
    }
}
