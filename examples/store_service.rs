//! The triple-store service end to end: stream a synthetic bulk load
//! into a shared `TripleStore`, inspect its stats, and serve the same
//! well-designed query from four threads concurrently — with the
//! epoch-keyed LRU cache absorbing the repeats. A final act replays a
//! *skewed* ingest into a hash-sharded `ShardedStore`: scattered loads
//! under per-shard write locks, balanced shards despite the hot
//! subjects, and routed queries whose cached results survive writes to
//! the other shards.
//!
//! Run with: `cargo run --example store_service`

use std::sync::Arc;
use wdsparql::rdf::{iri, tp, var, Iri};
use wdsparql::workloads::{skewed_triple_stream, triple_stream};
use wdsparql::{Engine, Query, ShardedStore, TripleStore};

fn main() {
    // 1. Bulk-load a generated workload in batches, as an ingest
    //    pipeline would: each batch appends one sorted delta segment
    //    (no base rewrite); the adaptive compaction policy folds the
    //    segments back into the base as they accumulate.
    let store = Arc::new(TripleStore::new());
    let mut stream = triple_stream(2_000, 50_000, 6, 7);
    let mut batch_no = 0;
    loop {
        let batch: Vec<_> = stream.by_ref().take(10_000).collect();
        if batch.is_empty() {
            break;
        }
        batch_no += 1;
        let added = store.bulk_load(batch);
        let st = store.stats();
        println!(
            "batch {batch_no}: +{added} new triples (epoch {}, {} delta row(s) in {} segment(s))",
            store.epoch(),
            st.delta_rows,
            st.segments
        );
    }
    // Fold whatever is still pending (and build the PSO permutation for
    // subject-sorted merge joins). Contents are unchanged, so cached
    // results — keyed by epoch — survive.
    store.compact();

    // 2. The stats snapshot drives the planner: per-predicate
    //    cardinalities, read straight off the POS offsets.
    let stats = store.stats();
    println!("\n{stats}\n");

    // 3. Concurrent queries through the store-backed engine. Every
    //    thread shares the same store; pattern matching inside the
    //    evaluator resolves through the sorted permutation ranges under
    //    the read lock.
    let query_text = "((?x, p0, ?y) OPT (?y, p1, ?z)) OPT (?y, p2, ?w)";
    let mut handles = Vec::new();
    for worker in 0..4 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let engine = Engine::from_store(store);
            let query = Query::parse(query_text).expect("well-designed");
            let solutions = engine.evaluate(&query);
            (worker, solutions.len())
        }));
    }
    for h in handles {
        let (worker, n) = h.join().expect("worker finished");
        println!("worker {worker}: {n} solutions");
    }

    // 4. The service's conjunctive (BGP) path: planned
    //    most-selective-first — plan and solutions from one snapshot,
    //    so they can never diverge — answered from the cache on repeats.
    let patterns = [
        tp(var("x"), iri("p0"), var("y")),
        tp(var("y"), iri("p1"), var("z")),
    ];
    let planned = store.query_with_plan(&patterns);
    println!(
        "\nBGP plan (epoch {}): {}",
        planned.epoch,
        planned
            .plan
            .iter()
            .map(|&i| patterns[i].to_string())
            .collect::<Vec<_>>()
            .join(" ⋈ ")
    );
    for round in 1..=3 {
        let sols = store.query(&patterns);
        let cache = store.cache_stats();
        println!(
            "round {round}: {} join solutions | cache: {} hits, {} misses",
            sols.len(),
            cache.hits,
            cache.misses
        );
    }

    // 5. The sharded facade: the same service scaled across N
    //    hash-partitioned shards. The feed is subject-skewed (a hot
    //    head of subjects draws most writes), yet hashing the subject
    //    *names* keeps the shards balanced; every bulk load scatters
    //    its batch under independent per-shard write locks.
    let sharded = Arc::new(ShardedStore::new(4));
    let mut stream = skewed_triple_stream(2_000, 40_000, 6, 13);
    loop {
        let batch: Vec<_> = stream.by_ref().take(10_000).collect();
        if batch.is_empty() {
            break;
        }
        sharded.bulk_load(batch);
    }
    sharded.compact();
    let stats = sharded.stats();
    println!("\nsharded ingest of a skewed feed:\n{stats}");

    // Routed vs fan-out queries: a subject-bound pattern touches one
    // shard and is cached under that shard's epoch alone — a write to
    // any *other* shard leaves it cached; a fan-out reads every shard.
    let hot = Iri::new("n0"); // the hottest subject of the skewed feed
    let routed = [tp(hot, iri("p0"), var("y"))];
    let fanout = [
        tp(var("x"), iri("p0"), var("y")),
        tp(var("y"), iri("p1"), var("z")),
    ];
    println!(
        "routed (n0, p0, ?y): {} solution(s) from shard {}",
        sharded.query(&routed).len(),
        sharded.shard_of(hot)
    );
    println!("fan-out join: {} solution(s)", sharded.query(&fanout).len());
    let other_shard = (sharded.shard_of(hot) + 1) % sharded.shard_count();
    let foreign = (0..)
        .map(|i| Iri::new(&format!("w{i}")))
        .find(|s| sharded.shard_of(*s) == other_shard)
        .expect("some name hashes to the other shard");
    sharded.bulk_load([wdsparql::rdf::Triple::new(foreign, Iri::new("p0"), hot)]);
    let before = sharded.cache_stats();
    sharded.query(&routed);
    let after = sharded.cache_stats();
    println!(
        "after a write to shard {other_shard}: routed query {} (epochs {:?})",
        if after.hits > before.hits {
            "still served from cache"
        } else {
            "recomputed"
        },
        sharded.epochs()
    );

    // The evaluation engine runs on the sharded layout unchanged.
    let engine = Engine::from_sharded_store(Arc::clone(&sharded));
    let query = Query::parse(query_text).expect("well-designed");
    println!(
        "sharded engine: {} solutions to the OPT query",
        engine.evaluate(&query).len()
    );
}
