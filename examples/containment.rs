//! Static analysis: containment, equivalence and subsumption of
//! well-designed patterns (the optimisation problems of §3.2's
//! references), with verified counterexamples.
//!
//! Run with: `cargo run --release --example containment`

use wdsparql::algebra::parse_pattern;
use wdsparql::contain::{
    decide_containment, decide_equivalence, max_solutions, subsumed_on, SearchBudget, Verdict,
};
use wdsparql::core::enumerate_forest;
use wdsparql::rdf::RdfGraph;
use wdsparql::tree::Wdpf;

fn forest(text: &str) -> Wdpf {
    Wdpf::from_pattern(&parse_pattern(text).expect("parses")).expect("well-designed")
}

fn show(v: &Verdict) -> String {
    match v {
        Verdict::Contained => "CONTAINED (proved)".into(),
        Verdict::NotContained(ce) => {
            format!(
                "NOT CONTAINED (witness: {} on {} triples)",
                ce.mu,
                ce.graph.len()
            )
        }
        Verdict::Unknown => "UNKNOWN".into(),
    }
}

fn main() {
    let budget = SearchBudget::default();

    // 1. AND is commutative: equivalence proved both ways.
    let ab = forest("(?x, p, ?y) AND (?y, q, ?z)");
    let ba = forest("(?y, q, ?z) AND (?x, p, ?y)");
    let (fwd, bwd) = decide_equivalence(&ab, &ba, &budget);
    println!("A AND B  vs  B AND A:");
    println!("  ⊆: {}\n  ⊇: {}", show(&fwd), show(&bwd));
    assert!(fwd.is_contained() && bwd.is_contained());

    // 2. OPT is *not* containment of its left arm: the witness graph
    //    triggers the optional extension, making the bare mapping
    //    non-maximal.
    let left = forest("(?x, p, ?y)");
    let opt = forest("(?x, p, ?y) OPT (?y, q, ?z)");
    let v = decide_containment(&left, &opt, &budget);
    println!("\nP  vs  P OPT Q:");
    println!("  ⊆: {}", show(&v));
    if let Verdict::NotContained(ce) = &v {
        assert!(ce.verify(&left, &opt));
        println!("  counterexample graph:");
        for t in ce.graph.iter() {
            println!("    {t}");
        }
    }

    // 3. But AND-solutions are always OPT-solutions.
    let and = forest("(?x, p, ?y) AND (?y, q, ?z)");
    let v = decide_containment(&and, &opt, &budget);
    println!("\nP AND Q  vs  P OPT Q:\n  ⊆: {}", show(&v));
    assert!(v.is_contained());

    // 4. Subsumption (the order OPT maximises) differs from containment:
    //    on any graph, ⟦P⟧ is subsumed by ⟦P OPT Q⟧ even where it is not
    //    contained.
    let g = RdfGraph::from_strs([("a", "p", "b"), ("b", "q", "c")]);
    println!("\nOn G = {{(a,p,b), (b,q,c)}}:");
    println!(
        "  ⟦P⟧ ⊑ ⟦P OPT Q⟧ (subsumption): {}",
        subsumed_on(&left, &opt, &g)
    );
    let opt_sols = enumerate_forest(&opt, &g);
    println!(
        "  maximal solutions of P OPT Q: {:?}",
        max_solutions(&opt_sols)
            .iter()
            .map(|m| m.to_string())
            .collect::<Vec<_>>()
    );

    // 5. A UNION absorption law, proved syntactically.
    let u = forest("(?x, p, ?y) UNION ((?x, q, ?y) AND (?x, p, ?y))");
    let b = forest("(?x, p, ?y)");
    let (fwd, bwd) = decide_equivalence(&u, &b, &budget);
    println!("\nP UNION (Q AND P)  vs  P:");
    println!("  ⊆: {}\n  ⊇: {}", show(&fwd), show(&bwd));
    assert!(fwd.is_contained() && bwd.is_contained());
    println!("\n(equivalence proved: the second UNION branch is absorbed)");
}
