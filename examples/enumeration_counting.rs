//! Enumeration and counting (§5's other evaluation variants): full
//! solution sets, per-domain histograms, work counters and per-solution
//! delay, plus recognition certificates for the width measures.
//!
//! Run with: `cargo run --release --example enumeration_counting`

use wdsparql::core::{count_by_domain, count_forest, enumerate_with_stats};
use wdsparql::width::{recognize_bw, recognize_dw, BwCertificate, DwCertificate};
use wdsparql::workloads::{clique_child_tree, fk_forest, social_network};
use wdsparql::Query;

fn main() {
    // A social network where profile data is optional — the natural home
    // of OPT queries.
    let g = social_network(40, 7);
    println!("Social network: {} triples.", g.len());

    let q = Query::parse("{ ?x knows ?y OPTIONAL { ?y email ?e } OPTIONAL { ?y city ?c } }")
        .expect("well-designed");
    println!("\nQuery: {q}");

    // 1. Counting, overall and by solution domain: which OPT extensions
    //    actually fire on this data?
    let total = count_forest(q.forest(), &g);
    println!("\nTotal solutions: {total}");
    println!("By domain (which OPTIONALs matched):");
    for (domain, count) in count_by_domain(q.forest(), &g) {
        let names: Vec<String> = domain.iter().map(|v| v.to_string()).collect();
        println!("  {{{}}}: {count}", names.join(", "));
    }

    // 2. Instrumented enumeration: how much work, and what is the longest
    //    gap between consecutive solutions?
    let (sols, stats) = enumerate_with_stats(q.forest(), &g);
    assert_eq!(sols.len(), total);
    println!(
        "\nEnumeration: {} emitted / {} distinct, {} hom-solver calls, \
         {} steps, max delay {} steps",
        stats.emitted, stats.solutions, stats.hom_calls, stats.steps, stats.max_delay_steps
    );

    // 3. Recognition with certificates: this query is width-1 (tractable
    //    class), and the certificate can be re-verified independently.
    match recognize_dw(q.forest(), 1) {
        DwCertificate::Holds(entries) => {
            println!(
                "\ndw ≤ 1 recognised: {} subtree domination assignments, verified = {}",
                entries.len(),
                wdsparql::width::verify_dw_certificate(q.forest(), 1, &entries)
            );
        }
        DwCertificate::Violated(v) => {
            println!("\nunexpected: dw > 1 with witness ctw {}", v.element_ctw)
        }
    }

    // 4. The same machinery on the paper's families: F_k is recognised at
    //    width 1 for every k; the clique-child family Q_5 is rejected at 3
    //    with the violating node named.
    for k in 2..=4 {
        assert!(recognize_dw(&fk_forest(k), 1).holds());
    }
    println!("F_2, F_3, F_4 all carry dw ≤ 1 certificates (Example 5).");
    match recognize_bw(&clique_child_tree(5), 3) {
        BwCertificate::Violated(v) => println!(
            "Q_5 rejected at bw ≤ 3: node {} has branch ctw {} (= k − 1).",
            v.node.0, v.ctw
        ),
        BwCertificate::Holds(_) => println!("unexpected: Q_5 accepted at 3"),
    }
}
